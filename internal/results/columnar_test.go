package results

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"vulnstack/internal/colseg"
	"vulnstack/internal/micro"
)

// randomRecords draws a deterministic mixed record set shaped like a
// real campaign (all columns exercised, including negative-free but
// non-contiguous coordinates and every outcome/FPM class).
func randomRecords(n int, seed int64) []Record {
	r := rand.New(rand.NewSource(seed))
	targets := []string{"RF", "LSQ", "L1i", "L1d", "L2", "reg-uniform", ""}
	recs := make([]Record, n)
	coord := uint64(0)
	for i := range recs {
		coord += uint64(r.Intn(3000))
		recs[i] = Record{
			Index:     i,
			Layer:     Layer(r.Intn(int(NumLayers))),
			Target:    targets[r.Intn(len(targets))],
			Coord:     coord,
			Entry:     r.Intn(1 << 20),
			Bit:       r.Intn(64),
			Slot:      r.Intn(4),
			Outcome:   Outcome(r.Intn(int(NumOutcomes))),
			EarlyStop: r.Intn(4) == 0,
		}
		if r.Intn(3) == 0 {
			recs[i].Visible = true
			recs[i].Live = true
			recs[i].FPM = micro.FPM(r.Intn(int(micro.NumFPM)))
			recs[i].Contact = coord + uint64(r.Intn(100))
		}
		// Statically-resolved provenance (schema v3) rides the same
		// round-trip assertions as every other column.
		if r.Intn(5) == 0 {
			recs[i].StaticResolved = true
			recs[i].Outcome = Masked
		}
	}
	return recs
}

func TestColumnarRoundTrip(t *testing.T) {
	// Encode/decode through the column mapping is lossless for every
	// record count shape: empty, single, sub-block, and multi-block.
	for _, n := range []int{0, 1, 513, BlockRows, BlockRows + 7, 2*BlockRows + 3} {
		recs := randomRecords(n, int64(n)+1)
		data := encodeColumnar(recs)
		c := newCursor(bytes.NewReader(data), nil, "test", n, Filter{})
		got, err := c.Records()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d", n, len(got))
		}
		for i := range got {
			if got[i] != recs[i] {
				t.Fatalf("n=%d record %d: %+v != %+v", n, i, got[i], recs[i])
			}
		}
	}
}

func TestColumnarNonContiguousIndex(t *testing.T) {
	// The index column is delta-coded against the previous row; gaps
	// (records filtered upstream, or a block boundary mid-campaign)
	// must survive exactly.
	recs := []Record{{Index: 5}, {Index: 6}, {Index: 100}, {Index: 101}, {Index: 4000}}
	data := encodeColumnar(recs)
	c := newCursor(bytes.NewReader(data), nil, "test", len(recs), Filter{})
	got, err := c.Records()
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if got[i].Index != recs[i].Index {
			t.Fatalf("row %d index %d != %d", i, got[i].Index, recs[i].Index)
		}
	}
}

func TestJSONLConverterRoundTrip(t *testing.T) {
	// WriteJSONL -> ReadJSONL is the other half of the lossless
	// two-way converter.
	recs := randomRecords(700, 11)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d of %d", len(got), len(recs))
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestCursorTallyMatchesTallyOf(t *testing.T) {
	// The streaming aggregation path must be bit-identical to the
	// materialize-then-TallyOf path.
	recs := randomRecords(BlockRows+999, 3)
	data := encodeColumnar(recs)
	c := newCursor(bytes.NewReader(data), nil, "test", len(recs), Filter{})
	got, err := c.Tally()
	if err != nil {
		t.Fatal(err)
	}
	if want := TallyOf(recs); got != want {
		t.Fatalf("cursor tally %+v != %+v", got, want)
	}
}

func TestFilterPushdownMatchesReference(t *testing.T) {
	// The column-wise selection vector must agree with the row-at-a-time
	// Filter.Match reference on every filter shape, for both Tally and
	// Records.
	recs := randomRecords(4000, 5)
	data := encodeColumnar(recs)
	filters := []Filter{
		{},
		{Outcomes: []Outcome{SDC}},
		{Outcomes: []Outcome{SDC, Crash}},
		{FPMs: []micro.FPM{micro.FPMWD}},
		{Targets: []string{"RF", "L2"}},
		{BitRange: true, BitLo: 8, BitHi: 15},
		{Outcomes: []Outcome{Masked}, Targets: []string{"LSQ"}, BitRange: true, BitLo: 0, BitHi: 31},
		{Outcomes: []Outcome{Detected}, FPMs: []micro.FPM{micro.FPMESC}, Targets: []string{"nope"}},
	}
	for fi, f := range filters {
		var want []Record
		for _, r := range recs {
			if f.Match(r) {
				want = append(want, r)
			}
		}
		c := newCursor(bytes.NewReader(data), nil, "test", len(recs), f)
		got, err := c.Records()
		if err != nil {
			t.Fatalf("filter %d: %v", fi, err)
		}
		if len(got) != len(want) {
			t.Fatalf("filter %d: %d records, want %d", fi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("filter %d record %d mismatch", fi, i)
			}
		}
		c = newCursor(bytes.NewReader(data), nil, "test", len(recs), f)
		tl, err := c.Tally()
		if err != nil {
			t.Fatalf("filter %d: %v", fi, err)
		}
		if wt := TallyOf(want); tl != wt {
			t.Fatalf("filter %d: tally %+v != %+v", fi, tl, wt)
		}
	}
}

func TestStoreMigratesLegacyJSONLOnFirstTouch(t *testing.T) {
	s := testStore(t)
	k := Key{Layer: "micro", Target: "legacy", Config: "A72", Struct: "RF", Seed: 3}
	recs := randomRecords(1200, 7)
	if err := s.SaveJSONL(k, recs); err != nil {
		t.Fatal(err)
	}
	m, ok, err := s.Manifest(k)
	if err != nil || !ok || m.Format != FormatJSONL {
		t.Fatalf("manifest %+v ok=%v err=%v", m, ok, err)
	}
	got, ok, err := s.Load(k)
	if err != nil || !ok || len(got) != len(recs) {
		t.Fatalf("load: %d records ok=%v err=%v", len(got), ok, err)
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch after migration", i)
		}
	}
	// First touch flipped the campaign to columnar and dropped the
	// interchange file.
	m, _, err = s.Manifest(k)
	if err != nil || m.Format != FormatColumnar {
		t.Fatalf("post-migration manifest %+v err=%v", m, err)
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), k.ID()+JSONLExt)); !os.IsNotExist(err) {
		t.Fatalf("jsonl survived migration: %v", err)
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), k.ID()+SegExt)); err != nil {
		t.Fatalf("segment missing: %v", err)
	}
}

func TestStoreAppendAfterMigration(t *testing.T) {
	// A legacy campaign tops up through the columnar path and stays
	// bit-identical to a one-shot save.
	s := testStore(t)
	k := Key{Layer: "soft", Target: "topup", Seed: 9}
	all := randomRecords(900, 13)
	if err := s.SaveJSONL(k, all[:400]); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(k, all[400:]); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Load(k)
	if err != nil || !ok || len(got) != len(all) {
		t.Fatalf("load: %d ok=%v err=%v", len(got), ok, err)
	}
	for i := range got {
		if got[i] != all[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
	tp, err := s.TallyPrefix(k, len(all))
	if err != nil {
		t.Fatal(err)
	}
	if want := TallyOf(all); tp != want {
		t.Fatalf("TallyPrefix %+v != %+v", tp, want)
	}
	if tp400, err := s.TallyPrefix(k, 400); err != nil || tp400 != TallyOf(all[:400]) {
		t.Fatalf("prefix 400: %+v err=%v", tp400, err)
	}
}

func TestStoreTrailingSegmentBytesIgnored(t *testing.T) {
	// Bytes past the manifest-promised rows are a crashed append's torn
	// tail — loads serve the promised prefix, and the next append
	// truncates the debris (mirroring the JSONL trailing-line behavior).
	s := testStore(t)
	k := Key{Layer: "micro", Target: "crash", Config: "A9", Struct: "L2", Seed: 4}
	recs := randomRecords(300, 21)
	if err := s.Save(k, recs[:200]); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(s.Dir(), k.ID()+SegExt)
	// Simulate a crash mid-append: half a block's bytes, no manifest
	// update.
	debris := encodeColumnar(recs[200:260])
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(debris[:len(debris)/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, ok, err := s.Load(k)
	if err != nil || !ok || len(got) != 200 {
		t.Fatalf("load with debris: %d ok=%v err=%v", len(got), ok, err)
	}
	// The re-append replays the same tail records and must supersede the
	// debris.
	if err := s.Append(k, recs[200:]); err != nil {
		t.Fatal(err)
	}
	got, _, err = s.Load(k)
	if err != nil || len(got) != 300 {
		t.Fatalf("load after re-append: %d err=%v", len(got), err)
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch after debris truncation", i)
		}
	}
}

func TestStoreSegmentVersionMismatch(t *testing.T) {
	// A segment written by a future block-format version must be
	// rejected loudly, never misdecoded.
	s := testStore(t)
	k := Key{Layer: "soft", Target: "ver", Seed: 6}
	if err := s.Save(k, randomRecords(10, 2)); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(s.Dir(), k.ID()+SegExt)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[4] = colseg.Version + 1 // frame version byte
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load(k); !errors.Is(err, colseg.ErrVersion) {
		t.Fatalf("version mismatch err=%v, want ErrVersion", err)
	}
	if _, err := s.TallyPrefix(k, 10); !errors.Is(err, colseg.ErrVersion) {
		t.Fatalf("TallyPrefix version mismatch err=%v, want ErrVersion", err)
	}
}

func TestStoreExportJSONLRoundTrip(t *testing.T) {
	// Export (columnar -> JSONL) then re-read: the two-way converter is
	// lossless end to end through the store surface.
	s := testStore(t)
	k := Key{Layer: "arch", Target: "exp", Struct: "WD", Seed: 8}
	recs := randomRecords(500, 17)
	if err := s.Save(k, recs); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.ExportJSONL(k.ID(), &buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf, -1)
	if err != nil || len(got) != len(recs) {
		t.Fatalf("reimport: %d err=%v", len(got), err)
	}
	for i := range got {
		if got[i] != recs[i] {
			t.Fatalf("record %d mismatch through export", i)
		}
	}
}

func TestStoreCompact(t *testing.T) {
	s := testStore(t)
	kj := Key{Layer: "micro", Target: "j", Config: "A72", Struct: "RF", Seed: 1}
	kc := Key{Layer: "soft", Target: "c", Seed: 2}
	if err := s.SaveJSONL(kj, randomRecords(100, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(kc, randomRecords(50, 2)); err != nil {
		t.Fatal(err)
	}
	st, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.Campaigns != 2 || st.Migrated != 1 || st.JSONLBytes == 0 || st.SegBytes == 0 {
		t.Fatalf("compact stats %+v", st)
	}
	ms, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Format != FormatColumnar {
			t.Fatalf("campaign %s still %s after compact", m.Key.ID(), m.Format)
		}
	}
	// Idempotent.
	st, err = s.Compact()
	if err != nil || st.Migrated != 0 {
		t.Fatalf("second compact %+v err=%v", st, err)
	}
}

func TestParseOutcomeFPM(t *testing.T) {
	if o, err := ParseOutcome("sdc"); err != nil || o != SDC {
		t.Fatalf("sdc -> %v err=%v", o, err)
	}
	if _, err := ParseOutcome("bogus"); err == nil {
		t.Fatal("bogus outcome must error")
	}
	if m, err := ParseFPM("wd"); err != nil || m != micro.FPMWD {
		t.Fatalf("wd -> %v err=%v", m, err)
	}
	if _, err := ParseFPM("bogus"); err == nil {
		t.Fatal("bogus FPM must error")
	}
}

// TestPreV3BlockReadsStaticFalse pins the legacy-read contract of the
// schema v3 column: a block written by a pre-v3 encoder (no colStatic —
// here also no colStratum, i.e. a v1 writer) must decode with
// StaticResolved false and Stratum "" on every record, with no
// migration step.
func TestPreV3BlockReadsStaticFalse(t *testing.T) {
	recs := randomRecords(300, 9)
	n := len(recs)
	idx := make([]int64, n)
	layer := make([]uint8, n)
	target := make([]string, n)
	coord := make([]uint64, n)
	entry := make([]int64, n)
	bit := make([]int64, n)
	slot := make([]int64, n)
	outcome := make([]uint8, n)
	visible := make([]bool, n)
	fpm := make([]uint8, n)
	contact := make([]uint64, n)
	live := make([]bool, n)
	early := make([]bool, n)
	prev := int64(0)
	for i, r := range recs {
		if i == 0 {
			idx[i] = int64(r.Index)
		} else {
			idx[i] = int64(r.Index) - prev - 1
		}
		prev = int64(r.Index)
		layer[i] = uint8(r.Layer)
		target[i] = r.Target
		coord[i] = r.Coord
		entry[i] = int64(r.Entry)
		bit[i] = int64(r.Bit)
		slot[i] = int64(r.Slot)
		outcome[i] = uint8(r.Outcome)
		visible[i] = r.Visible
		fpm[i] = uint8(r.FPM)
		contact[i] = r.Contact
		live[i] = r.Live
		early[i] = r.EarlyStop
	}
	b := colseg.NewBuilder(n)
	b.Zigzag(colIndex, idx)
	b.U8(colLayer, layer)
	b.Dict(colTarget, target)
	b.Uvarint(colCoord, coord)
	b.Zigzag(colEntry, entry)
	b.Zigzag(colBit, bit)
	b.Zigzag(colSlot, slot)
	b.U8(colOutcome, outcome)
	b.Bits(colVisible, visible)
	b.U8(colFPM, fpm)
	b.Uvarint(colContact, contact)
	b.Bits(colLive, live)
	b.Bits(colEarly, early)
	data := b.AppendTo(nil)

	c := newCursor(bytes.NewReader(data), nil, "legacy", n, Filter{})
	got, err := c.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("decoded %d of %d", len(got), n)
	}
	for i, r := range got {
		if r.StaticResolved {
			t.Fatalf("record %d from a pre-v3 block reads StaticResolved", i)
		}
		if r.Stratum != "" {
			t.Fatalf("record %d from a pre-v2 block reads stratum %q", i, r.Stratum)
		}
		want := recs[i]
		want.StaticResolved = false
		want.Stratum = ""
		if r != want {
			t.Fatalf("record %d: %+v != %+v", i, r, want)
		}
	}
}
