package results

import (
	"os"
	"path/filepath"
	"testing"

	"vulnstack/internal/micro"
)

func rec(i int, o Outcome, visible bool, fpm micro.FPM) Record {
	return Record{Index: i, Layer: LayerMicro, Target: "RF", Coord: uint64(100 + i),
		Bit: i % 8, Outcome: o, Visible: visible, FPM: fpm, Live: visible}
}

func TestTallyOf(t *testing.T) {
	recs := []Record{
		rec(0, Masked, false, micro.FPMNone),
		rec(1, SDC, true, micro.FPMWD),
		rec(2, Crash, true, micro.FPMWI),
		rec(3, Detected, false, micro.FPMNone),
		rec(4, SDC, true, micro.FPMWD),
	}
	tl := TallyOf(recs)
	if tl.N != 5 || tl.Outcomes[SDC] != 2 || tl.Outcomes[Crash] != 1 ||
		tl.Outcomes[Detected] != 1 || tl.Outcomes[Masked] != 1 {
		t.Fatalf("tally %+v", tl)
	}
	if tl.Visible != 3 || tl.FPM[micro.FPMWD] != 2 || tl.FPM[micro.FPMWI] != 1 {
		t.Fatalf("visibility %+v", tl)
	}
	if got := tl.Failures(); got != tl.Frac(SDC)+tl.Frac(Crash) {
		t.Fatalf("failures %v", got)
	}
	if tl.AVF() != tl.PVF() || tl.PVF() != tl.SVF() {
		t.Fatal("layer views must agree on the failure fraction")
	}
	if got := tl.HVF(); got != 0.6 {
		t.Fatalf("HVF %v", got)
	}
	if got := tl.FPMShare(micro.FPMWD); got != 2.0/3 {
		t.Fatalf("FPMShare %v", got)
	}
	// Streaming Add over the same records agrees with TallyOf.
	var st Tally
	for _, r := range recs {
		st.Add(r)
	}
	if st != tl {
		t.Fatalf("stream %+v != batch %+v", st, tl)
	}
}

func TestTallyEmpty(t *testing.T) {
	var tl Tally
	if tl.Frac(SDC) != 0 || tl.HVF() != 0 || tl.FPMShare(micro.FPMWD) != 0 || tl.Failures() != 0 {
		t.Fatal("empty tally fractions must be 0")
	}
}

func TestKeyID(t *testing.T) {
	k := Key{Layer: "micro", Target: "sha/1/1/false/VSA64", Config: "A72", Struct: "RF", Seed: 2021}
	if k.ID() != k.ID() || len(k.ID()) != 16 {
		t.Fatalf("id %q", k.ID())
	}
	k2 := k
	k2.Seed = 2022
	if k.ID() == k2.ID() {
		t.Fatal("different keys must have different ids")
	}
}

func testStore(t *testing.T) *Store {
	t.Helper()
	s, err := OpenStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreRoundtrip(t *testing.T) {
	s := testStore(t)
	k := Key{Layer: "micro", Target: "sha", Config: "A72", Struct: "RF", Seed: 7}

	if _, ok, err := s.Load(k); err != nil || ok {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	recs := []Record{rec(0, Masked, false, 0), rec(1, SDC, true, micro.FPMWD)}
	if err := s.Save(k, recs); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Load(k)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if len(got) != 2 || got[0] != recs[0] || got[1] != recs[1] {
		t.Fatalf("roundtrip %+v", got)
	}
	if TallyOf(got) != TallyOf(recs) {
		t.Fatal("reloaded tally must be bit-identical")
	}
}

func TestStoreAppend(t *testing.T) {
	s := testStore(t)
	k := Key{Layer: "soft", Target: "sha", Seed: 7}
	if err := s.Append(k, []Record{rec(0, SDC, false, 0)}); err == nil {
		t.Fatal("append to unknown campaign must error")
	}
	if err := s.Save(k, []Record{rec(0, Masked, false, 0), rec(1, SDC, false, 0)}); err != nil {
		t.Fatal(err)
	}
	// Non-contiguous append (gap in the pre-drawn sequence) must error.
	if err := s.Append(k, []Record{rec(5, Crash, false, 0)}); err == nil {
		t.Fatal("non-contiguous append must error")
	}
	if err := s.Append(k, []Record{rec(2, Crash, false, 0), rec(3, Detected, false, 0)}); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Load(k)
	if err != nil || !ok || len(got) != 4 {
		t.Fatalf("after append: %d records, ok=%v err=%v", len(got), ok, err)
	}
	for i, r := range got {
		if r.Index != i {
			t.Fatalf("record %d has index %d", i, r.Index)
		}
	}
	m, ok, err := s.Manifest(k)
	if err != nil || !ok || m.N != 4 {
		t.Fatalf("manifest %+v ok=%v err=%v", m, ok, err)
	}
}

func TestStoreList(t *testing.T) {
	s := testStore(t)
	ka := Key{Layer: "micro", Target: "a", Config: "A72", Struct: "RF", Seed: 1}
	kb := Key{Layer: "arch", Target: "b", Struct: "WD", Seed: 2}
	if err := s.Save(kb, []Record{rec(0, SDC, false, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(ka, []Record{rec(0, Masked, false, 0)}); err != nil {
		t.Fatal(err)
	}
	ms, err := s.List()
	if err != nil || len(ms) != 2 {
		t.Fatalf("list: %d manifests, err=%v", len(ms), err)
	}
	// Sorted by key string: "arch/..." < "micro/...".
	if ms[0].Key != kb || ms[1].Key != ka {
		t.Fatalf("order %+v", ms)
	}
	m, recs, err := s.LoadID(ka.ID())
	if err != nil || m.Key != ka || len(recs) != 1 {
		t.Fatalf("LoadID: %+v %d err=%v", m, len(recs), err)
	}
	if _, _, err := s.LoadID("nope"); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestStoreSchemaVersion(t *testing.T) {
	s := testStore(t)
	k := Key{Layer: "soft", Target: "x", Seed: 1}
	if err := s.Save(k, []Record{rec(0, Masked, false, 0)}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the manifest to a future schema: loads must fail loudly,
	// not silently misaggregate.
	path := filepath.Join(s.Dir(), k.ID()+".json")
	if err := os.WriteFile(path, []byte(`{"schema":99,"key":{"layer":"soft","target":"x","seed":1},"n":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load(k); err == nil {
		t.Fatal("schema mismatch must error")
	}
}

func TestStoreTruncatedRecords(t *testing.T) {
	s := testStore(t)
	k := Key{Layer: "soft", Target: "y", Seed: 1}
	if err := s.Save(k, []Record{rec(0, Masked, false, 0), rec(1, SDC, false, 0)}); err != nil {
		t.Fatal(err)
	}
	// Truncate the segment below the manifest count: corruption.
	if err := os.WriteFile(filepath.Join(s.Dir(), k.ID()+SegExt), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load(k); err == nil {
		t.Fatal("truncated records must error")
	}
}
