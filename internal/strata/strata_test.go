package strata

import (
	"reflect"
	"testing"
)

func TestBitBucket(t *testing.T) {
	cases := []struct{ bit, want int }{
		{0, 0}, {7, 0}, {8, 1}, {31, 1}, {32, 2}, {63, 2},
	}
	for _, c := range cases {
		if got := BitBucket(c.bit); got != c.want {
			t.Errorf("BitBucket(%d) = %d, want %d", c.bit, got, c.want)
		}
	}
}

func TestLiveBucket(t *testing.T) {
	cases := []struct{ count, nregs, want int }{
		{-1, 32, -1}, {0, 32, 0}, {10, 32, 0}, {11, 32, 1},
		{21, 32, 1}, {22, 32, 2}, {32, 32, 2}, {5, 0, 0},
	}
	for _, c := range cases {
		if got := LiveBucket(c.count, c.nregs); got != c.want {
			t.Errorf("LiveBucket(%d,%d) = %d, want %d", c.count, c.nregs, got, c.want)
		}
	}
}

func TestPartitionStableOrderAndSizes(t *testing.T) {
	// Sites alternate between three keys in a scrambled first-seen
	// order; the partition must order strata by sorted key, not
	// insertion or map order.
	keys := []Key{
		{Class: "RF", Bit: 2, Live: 0},
		{Class: "L1d", Bit: 0, Live: 1},
		{Class: "RF", Bit: 0, Live: 0},
	}
	p := New(9, func(i int) Key { return keys[i%3] })
	wantLabels := []string{"L1d/b0/l1", "RF/b0/l0", "RF/b2/l0"}
	if got := p.Labels(); !reflect.DeepEqual(got, wantLabels) {
		t.Fatalf("Labels() = %v, want %v", got, wantLabels)
	}
	if got := p.Sizes(); !reflect.DeepEqual(got, []int{3, 3, 3}) {
		t.Fatalf("Sizes() = %v, want [3 3 3]", got)
	}
	// Site membership round-trips through Sites().
	for h := 0; h < p.NumStrata(); h++ {
		for _, site := range p.Sites(h) {
			if p.Stratum(site) != h {
				t.Fatalf("site %d in Sites(%d) but Stratum says %d", site, h, p.Stratum(site))
			}
		}
	}
	// Pool order preserved within a stratum.
	if got := p.Sites(1); !reflect.DeepEqual(got, []int{2, 5, 8}) {
		t.Fatalf("Sites(1) = %v, want [2 5 8]", got)
	}
}

func TestPartitionFingerprint(t *testing.T) {
	keyOf := func(i int) Key { return Key{Class: "RF", Bit: i % 2, Live: 0} }
	a := New(10, keyOf)
	b := New(10, keyOf)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical partitions disagree on fingerprint")
	}
	c := New(10, func(i int) Key { return Key{Class: "RF", Bit: (i + 1) % 2, Live: 0} })
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different assignments share a fingerprint")
	}
	d := New(11, keyOf)
	if a.Fingerprint() == d.Fingerprint() {
		t.Fatal("different pool sizes share a fingerprint")
	}
	if len(a.Fingerprint()) != 12 {
		t.Fatalf("fingerprint length %d, want 12", len(a.Fingerprint()))
	}
}

func TestPartitionEmpty(t *testing.T) {
	p := New(0, func(int) Key { panic("keyOf called for empty pool") })
	if p.NumStrata() != 0 || len(p.Sizes()) != 0 || len(p.Labels()) != 0 {
		t.Fatalf("empty partition not empty: %d strata", p.NumStrata())
	}
}
