// Package strata partitions a pre-drawn fault-site pool into
// deterministic equivalence classes for stratified campaign sampling.
// A stratum key combines the injection structure (or fault-model
// class), a bit-position bucket, and a static-liveness bucket — cheap
// static features that correlate with fault outcome, so grouping by
// them shrinks within-stratum variance and lets the Neyman allocator
// (internal/campaign) hit a target confidence bound with far fewer
// injections. Misclassification costs only efficiency, never bias: the
// reweighted estimator (internal/vuln) is unbiased for any partition.
//
// Stratum order is a sorted function of the key set — never map
// iteration order — so partitions, allocation rounds, and the record
// streams built from them are bit-reproducible across runs and worker
// counts.
package strata

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
)

// Key identifies one equivalence class of fault sites.
type Key struct {
	// Class is the layer-specific coarse class: the structure name at
	// the micro layer, the isa.FlipClass (WD/WI/WOI/trap/masked) of the
	// targeted instruction word at the arch layer, "live"/"dead" def at
	// the soft layer.
	Class string
	// Bit is the bit-position bucket (BitBucket).
	Bit int
	// Live is the static liveness bucket at the fault's governing
	// program point (LiveBucket), or -1 where liveness does not apply.
	Live int
	// Dem is the demanded-bits bucket from the bit-precise static
	// analysis: DemResolved for sites the analysis proves Masked,
	// DemDemanded for sites whose flipped bit is statically demanded,
	// and DemNone (the zero value) for partitions built without the
	// static pass — those keys keep their pre-static labels, so adding
	// the field never perturbs existing partitions or store keys.
	Dem int
}

// Demanded-bits bucket values for Key.Dem.
const (
	// DemNone marks a partition keyed without the static demanded-bits
	// feature (the zero value, label-invisible).
	DemNone = 0
	// DemResolved marks sites whose flipped bit is provably masked.
	DemResolved = 1
	// DemDemanded marks sites whose flipped bit is statically demanded
	// (or unresolvable).
	DemDemanded = 2
	// DemUndemanded marks sites whose flipped bit is statically
	// undemanded at the governing program point — a variance proxy at
	// the hardware layers, never a verdict (the architectural target of
	// a hardware fault is itself dynamic state there).
	DemUndemanded = 3
)

// String is the key's stable record-provenance label (stored per record
// in the results plane, so stored campaigns re-aggregate per stratum
// without re-deriving the partition).
func (k Key) String() string {
	if k.Dem == DemNone {
		return fmt.Sprintf("%s/b%d/l%d", k.Class, k.Bit, k.Live)
	}
	return fmt.Sprintf("%s/b%d/l%d/d%d", k.Class, k.Bit, k.Live, k.Dem)
}

func keyLess(a, b Key) bool {
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	if a.Bit != b.Bit {
		return a.Bit < b.Bit
	}
	if a.Live != b.Live {
		return a.Live < b.Live
	}
	return a.Dem < b.Dem
}

// BitBucket buckets a bit position into low byte (0), low word (1) and
// high half (2): the paper's masking behavior differs sharply between
// low-order value bits and high-order (often sign-extended or unused)
// bits, so these coarse buckets separate outcome regimes.
func BitBucket(bit int) int {
	switch {
	case bit < 8:
		return 0
	case bit < 32:
		return 1
	default:
		return 2
	}
}

// LiveBucket buckets a live-register count (from static dataflow, see
// internal/static) into thirds of the register file: few (0), some (1),
// many (2) live registers at the governing program point. Returns -1
// for unknown liveness (count < 0), keeping unknown sites in their own
// stratum rather than polluting a real bucket.
func LiveBucket(count, nregs int) int {
	if count < 0 {
		return -1
	}
	if nregs <= 0 {
		return 0
	}
	b := count * 3 / nregs
	if b > 2 {
		b = 2
	}
	return b
}

// Partition maps every site of a fault pool to its stratum. Strata are
// indexed [0, NumStrata) in sorted key order.
type Partition struct {
	keys  []Key
	sites []int // per-site stratum index
	sizes []int
}

// New partitions n sites by their keys. keyOf must be a pure function
// of the site index (it is called once per site, in order).
func New(n int, keyOf func(site int) Key) *Partition {
	perSite := make([]Key, n)
	for i := 0; i < n; i++ {
		perSite[i] = keyOf(i)
	}
	uniq := make([]Key, n)
	copy(uniq, perSite)
	sort.Slice(uniq, func(i, j int) bool { return keyLess(uniq[i], uniq[j]) })
	w := 0
	for i, k := range uniq {
		if i == 0 || k != uniq[w-1] {
			uniq[w] = k
			w++
		}
	}
	uniq = uniq[:w]
	index := make(map[Key]int, w)
	for h, k := range uniq {
		index[k] = h
	}
	p := &Partition{keys: uniq, sites: make([]int, n), sizes: make([]int, w)}
	for i, k := range perSite {
		h := index[k]
		p.sites[i] = h
		p.sizes[h]++
	}
	return p
}

// NumStrata is the number of equivalence classes.
func (p *Partition) NumStrata() int { return len(p.keys) }

// Stratum returns the stratum index of a pool site.
func (p *Partition) Stratum(site int) int { return p.sites[site] }

// Key returns the key of stratum h.
func (p *Partition) Key(h int) Key { return p.keys[h] }

// Labels returns the per-stratum provenance labels in stratum order.
func (p *Partition) Labels() []string {
	labels := make([]string, len(p.keys))
	for h, k := range p.keys {
		labels[h] = k.String()
	}
	return labels
}

// Sizes returns the per-stratum site counts in stratum order (the M_h
// feeding the reweighted estimator).
func (p *Partition) Sizes() []int {
	sizes := make([]int, len(p.sizes))
	copy(sizes, p.sizes)
	return sizes
}

// Sites returns the pool indices of stratum h, in pool order. Because
// the pool is an i.i.d. uniform draw, any prefix of this slice is an
// unbiased i.i.d. sample of the stratum.
func (p *Partition) Sites(h int) []int {
	out := make([]int, 0, p.sizes[h])
	for i, s := range p.sites {
		if s == h {
			out = append(out, i)
		}
	}
	return out
}

// Fingerprint digests the full per-site stratum assignment (labels and
// membership). Partitions depend on derived campaign state — checkpoint
// PCs, static liveness availability — so the fingerprint is embedded in
// the store key: streams built from incompatible partitions can never
// be confused for one another.
func (p *Partition) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(p.sites)))
	h.Write(buf[:])
	for _, k := range p.keys {
		h.Write([]byte(k.String()))
		h.Write([]byte{0})
	}
	for _, s := range p.sites {
		binary.LittleEndian.PutUint64(buf[:], uint64(s))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))[:12]
}
