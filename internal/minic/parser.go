package minic

import "fmt"

// Parser builds the AST from tokens.
type Parser struct {
	toks []Token
	pos  int
	errs []string
}

// Parse parses MiniC source into a File.
func Parse(src string) (*File, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	f := p.parseFile()
	if len(p.errs) > 0 {
		return nil, fmt.Errorf("minic parse: %s", p.errs[0])
	}
	return f, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) peek() Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) errorf(line int, format string, args ...any) {
	p.errs = append(p.errs, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
	if len(p.errs) > 64 {
		panic(parseBail{})
	}
}

type parseBail struct{}

func (p *Parser) expect(k TokKind) Token {
	t := p.cur()
	if t.Kind != k {
		p.errorf(t.Line, "expected %v, found %v", k, t.Kind)
		// Attempt resynchronization by consuming the offending token.
		if t.Kind == TokEOF {
			panic(parseBail{})
		}
		p.next()
		return Token{Kind: k, Line: t.Line}
	}
	return p.next()
}

func (p *Parser) accept(k TokKind) bool {
	if p.cur().Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *Parser) parseFile() *File {
	f := &File{}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(parseBail); !ok {
				panic(r)
			}
		}
	}()
	for p.cur().Kind != TokEOF {
		switch p.cur().Kind {
		case TokSemi:
			p.next()
		case TokConst:
			f.Consts = append(f.Consts, p.parseConst())
		case TokVar:
			f.Globals = append(f.Globals, p.parseGlobal())
		case TokFunc:
			f.Funcs = append(f.Funcs, p.parseFunc())
		default:
			p.errorf(p.cur().Line, "expected declaration, found %v", p.cur().Kind)
			p.next()
		}
	}
	return f
}

func (p *Parser) parseConst() *ConstDecl {
	t := p.expect(TokConst)
	name := p.expect(TokIdent)
	p.expect(TokAssign)
	x := p.parseExpr()
	p.accept(TokSemi)
	return &ConstDecl{Line: t.Line, Name: name.Text, X: x}
}

func (p *Parser) parseType() Type {
	switch p.cur().Kind {
	case TokInt:
		p.next()
		return TypeInt
	case TokByte:
		p.next()
		return TypeByte
	case TokStar:
		p.next()
		switch p.cur().Kind {
		case TokInt:
			p.next()
			return PtrTo(KindInt)
		case TokByte:
			p.next()
			return PtrTo(KindByte)
		}
		p.errorf(p.cur().Line, "expected int or byte after *")
		p.next()
		return PtrTo(KindInt)
	case TokLBrack:
		p.next()
		size := p.parseExpr() // must be constant; sema evaluates
		p.expect(TokRBrack)
		var elem TypeKind
		switch p.cur().Kind {
		case TokInt:
			elem = KindInt
		case TokByte:
			elem = KindByte
		default:
			p.errorf(p.cur().Line, "expected element type")
			elem = KindInt
		}
		p.next()
		t := ArrOf(elem, 0)
		t.SizeX = size
		return t
	}
	p.errorf(p.cur().Line, "expected type, found %v", p.cur().Kind)
	p.next()
	return TypeInt
}

func (p *Parser) parseGlobal() *GlobalDecl {
	t := p.expect(TokVar)
	name := p.expect(TokIdent)
	typ := p.parseType()
	g := &GlobalDecl{Line: t.Line, Name: name.Text, Type: typ}
	if p.accept(TokAssign) {
		switch p.cur().Kind {
		case TokLBrace:
			p.next()
			for p.cur().Kind != TokRBrace && p.cur().Kind != TokEOF {
				g.InitList = append(g.InitList, p.parseExpr())
				if !p.accept(TokComma) {
					break
				}
			}
			p.expect(TokRBrace)
		case TokString:
			g.InitStr = p.next().Str
		default:
			g.InitList = []Expr{p.parseExpr()}
		}
	}
	p.accept(TokSemi)
	return g
}

func (p *Parser) parseFunc() *FuncDecl {
	t := p.expect(TokFunc)
	name := p.expect(TokIdent)
	p.expect(TokLParen)
	var params []Param
	for p.cur().Kind != TokRParen && p.cur().Kind != TokEOF {
		pn := p.expect(TokIdent)
		pt := p.parseType()
		if pt.Kind == KindArr {
			p.errorf(pn.Line, "array parameters are not supported; pass a pointer")
			pt = PtrTo(pt.Elem)
		}
		params = append(params, Param{Name: pn.Text, Type: pt})
		if !p.accept(TokComma) {
			break
		}
	}
	p.expect(TokRParen)
	ret := TypeVoid
	if p.cur().Kind == TokInt {
		p.next()
		ret = TypeInt
	} else if p.cur().Kind == TokByte {
		p.next()
		ret = TypeInt // byte returns widen to int
	}
	body := p.parseBlock()
	return &FuncDecl{Line: t.Line, Name: name.Text, Params: params, Ret: ret, Body: body}
}

func (p *Parser) parseBlock() []Stmt {
	p.expect(TokLBrace)
	var stmts []Stmt
	for p.cur().Kind != TokRBrace && p.cur().Kind != TokEOF {
		if p.accept(TokSemi) {
			continue
		}
		stmts = append(stmts, p.parseStmt())
	}
	p.expect(TokRBrace)
	return stmts
}

func (p *Parser) parseStmt() Stmt {
	t := p.cur()
	switch t.Kind {
	case TokVar:
		p.next()
		name := p.expect(TokIdent)
		typ := p.parseType()
		var init Expr
		if p.accept(TokAssign) {
			init = p.parseExpr()
		}
		p.accept(TokSemi)
		return &VarStmt{Line: t.Line, Name: name.Text, Type: typ, Init: init}
	case TokIf:
		return p.parseIf()
	case TokWhile:
		p.next()
		cond := p.parseExpr()
		body := p.parseBlock()
		return &WhileStmt{Line: t.Line, Cond: cond, Body: body}
	case TokFor:
		return p.parseFor()
	case TokReturn:
		p.next()
		var x Expr
		if p.cur().Kind != TokSemi && p.cur().Kind != TokRBrace {
			x = p.parseExpr()
		}
		p.accept(TokSemi)
		return &ReturnStmt{Line: t.Line, X: x}
	case TokBreak:
		p.next()
		p.accept(TokSemi)
		return &BreakStmt{Line: t.Line}
	case TokContinue:
		p.next()
		p.accept(TokSemi)
		return &ContinueStmt{Line: t.Line}
	case TokLBrace:
		return &BlockStmt{Line: t.Line, Body: p.parseBlock()}
	default:
		s := p.parseSimpleStmt()
		p.accept(TokSemi)
		return s
	}
}

// parseSimpleStmt parses an assignment or expression statement (used
// directly in for-clauses, where no semicolon is consumed).
func (p *Parser) parseSimpleStmt() Stmt {
	t := p.cur()
	lhs := p.parseExpr()
	if p.accept(TokAssign) {
		rhs := p.parseExpr()
		return &AssignStmt{Line: t.Line, LHS: lhs, RHS: rhs}
	}
	return &ExprStmt{Line: t.Line, X: lhs}
}

func (p *Parser) parseIf() Stmt {
	t := p.expect(TokIf)
	cond := p.parseExpr()
	then := p.parseBlock()
	var els []Stmt
	if p.accept(TokElse) {
		if p.cur().Kind == TokIf {
			els = []Stmt{p.parseIf()}
		} else {
			els = p.parseBlock()
		}
	}
	return &IfStmt{Line: t.Line, Cond: cond, Then: then, Else: els}
}

func (p *Parser) parseFor() Stmt {
	t := p.expect(TokFor)
	var init, post Stmt
	var cond Expr
	if p.cur().Kind != TokSemi {
		init = p.parseSimpleStmt()
	}
	p.expect(TokSemi)
	if p.cur().Kind != TokSemi {
		cond = p.parseExpr()
	}
	p.expect(TokSemi)
	if p.cur().Kind != TokLBrace {
		post = p.parseSimpleStmt()
	}
	body := p.parseBlock()
	return &ForStmt{Line: t.Line, Init: init, Cond: cond, Post: post, Body: body}
}

// --- expressions (precedence climbing) ---

// Binary precedence levels, loosest first:
// 1: ||  2: &&  3: == != < <= > >=  4: |  5: ^  6: &  7: << >>
// 8: + -  9: * / %
func binPrec(k TokKind) int {
	switch k {
	case TokOrOr:
		return 1
	case TokAndAnd:
		return 2
	case TokEq, TokNe, TokLt, TokLe, TokGt, TokGe:
		return 3
	case TokPipe:
		return 4
	case TokCaret:
		return 5
	case TokAmp:
		return 6
	case TokShl, TokShr, TokShrU:
		return 7
	case TokPlus, TokMinus:
		return 8
	case TokStar, TokSlash, TokPercent:
		return 9
	}
	return 0
}

func (p *Parser) parseExpr() Expr { return p.parseBin(1) }

func (p *Parser) parseBin(minPrec int) Expr {
	lhs := p.parseUnary()
	for {
		op := p.cur().Kind
		prec := binPrec(op)
		if prec < minPrec {
			return lhs
		}
		t := p.next()
		rhs := p.parseBin(prec + 1)
		lhs = &BinExpr{Line: t.Line, Op: op, X: lhs, Y: rhs}
	}
}

func (p *Parser) parseUnary() Expr {
	t := p.cur()
	switch t.Kind {
	case TokMinus, TokBang, TokTilde, TokStar, TokAmp:
		p.next()
		x := p.parseUnary()
		return &UnaryExpr{Line: t.Line, Op: t.Kind, X: x}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() Expr {
	x := p.parsePrimary()
	for {
		switch p.cur().Kind {
		case TokLBrack:
			t := p.next()
			i := p.parseExpr()
			p.expect(TokRBrack)
			x = &IndexExpr{Line: t.Line, X: x, I: i}
		default:
			return x
		}
	}
}

func (p *Parser) parsePrimary() Expr {
	t := p.cur()
	switch t.Kind {
	case TokNumber, TokChar:
		p.next()
		return &NumExpr{Line: t.Line, Val: t.Num}
	case TokIdent:
		p.next()
		if p.cur().Kind == TokLParen {
			p.next()
			var args []Expr
			for p.cur().Kind != TokRParen && p.cur().Kind != TokEOF {
				args = append(args, p.parseExpr())
				if !p.accept(TokComma) {
					break
				}
			}
			p.expect(TokRParen)
			return &CallExpr{Line: t.Line, Name: t.Text, Args: args}
		}
		return &IdentExpr{Line: t.Line, Name: t.Text}
	case TokLParen:
		p.next()
		x := p.parseExpr()
		p.expect(TokRParen)
		return x
	default:
		p.errorf(t.Line, "expected expression, found %v", t.Kind)
		p.next()
		return &NumExpr{Line: t.Line}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
