package minic

import (
	"bytes"
	"testing"

	"vulnstack/internal/ir"
)

func TestLogicalShiftOperator(t *testing.T) {
	src := `
const C = 0x80000000 >>> 28  // 8
func main() int {
	var x int = -16
	out((x >>> 60) & 255)  // width 64: 15; width 32 differs (shift masked)
	out(x >> 61 & 255)     // arithmetic: -1 -> 255
	out(C)
	var y int = 0x80
	out(y >>> 4)           // 8
	return 0
}`
	m, err := Compile(src, 64)
	if err != nil {
		t.Fatal(err)
	}
	ip := ir.NewInterp(m, 64, 1<<20)
	ip.MaxSteps = 1 << 20
	if err := ip.Run("_start"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ip.Out, []byte{15, 255, 8, 8}) {
		t.Fatalf("%v", ip.Out)
	}
}
