// Package minic implements the MiniC language: a small, Go-flavored
// systems language compiled to the VSA ISAs through the package ir
// intermediate representation. The ten reproduction workloads are MiniC
// programs; the same source compiles for both VSA32 and VSA64, mirroring
// the paper's "same source workloads on two ISAs" setup.
package minic

import (
	"fmt"
	"strings"
)

// TokKind enumerates token kinds.
type TokKind int

const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString
	TokChar
	// Keywords.
	TokVar
	TokConst
	TokFunc
	TokIf
	TokElse
	TokWhile
	TokFor
	TokReturn
	TokBreak
	TokContinue
	TokInt
	TokByte
	// Punctuation and operators.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBrack
	TokRBrack
	TokComma
	TokSemi
	TokAssign
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokAmp
	TokPipe
	TokCaret
	TokTilde
	TokBang
	TokShl
	TokShr
	TokShrU
	TokEq
	TokNe
	TokLt
	TokLe
	TokGt
	TokGe
	TokAndAnd
	TokOrOr
)

var kindNames = map[TokKind]string{
	TokEOF: "EOF", TokIdent: "identifier", TokNumber: "number",
	TokString: "string", TokChar: "char literal",
	TokVar: "var", TokConst: "const", TokFunc: "func", TokIf: "if",
	TokElse: "else", TokWhile: "while", TokFor: "for", TokReturn: "return",
	TokBreak: "break", TokContinue: "continue", TokInt: "int", TokByte: "byte",
	TokLParen: "(", TokRParen: ")", TokLBrace: "{", TokRBrace: "}",
	TokLBrack: "[", TokRBrack: "]", TokComma: ",", TokSemi: ";",
	TokAssign: "=", TokPlus: "+", TokMinus: "-", TokStar: "*",
	TokSlash: "/", TokPercent: "%", TokAmp: "&", TokPipe: "|",
	TokCaret: "^", TokTilde: "~", TokBang: "!", TokShl: "<<", TokShr: ">>",
	TokShrU: ">>>",
	TokEq: "==", TokNe: "!=", TokLt: "<", TokLe: "<=", TokGt: ">",
	TokGe: ">=", TokAndAnd: "&&", TokOrOr: "||",
}

func (k TokKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("tok(%d)", int(k))
}

var keywords = map[string]TokKind{
	"var": TokVar, "const": TokConst, "func": TokFunc, "if": TokIf,
	"else": TokElse, "while": TokWhile, "for": TokFor, "return": TokReturn,
	"break": TokBreak, "continue": TokContinue, "int": TokInt, "byte": TokByte,
}

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Num  int64 // numbers and char literals
	Str  []byte
	Line int
}

// Lexer tokenizes MiniC source. Like Go, MiniC has automatic semicolon
// insertion: a newline terminates a statement when the previous token
// could end one.
type Lexer struct {
	src  string
	pos  int
	line int
	err  error
	last TokKind
}

// NewLexer creates a lexer for src.
func NewLexer(src string) *Lexer { return &Lexer{src: src, line: 1, last: TokEOF} }

// needSemi reports whether a newline after token kind k inserts a
// semicolon (Go's rule, adapted).
func needSemi(k TokKind) bool {
	switch k {
	case TokIdent, TokNumber, TokString, TokChar,
		TokRParen, TokRBrack, TokRBrace,
		TokBreak, TokContinue, TokReturn, TokInt, TokByte:
		return true
	}
	return false
}

func (lx *Lexer) errorf(format string, args ...any) Token {
	if lx.err == nil {
		lx.err = fmt.Errorf("line %d: %s", lx.line, fmt.Sprintf(format, args...))
	}
	return Token{Kind: TokEOF, Line: lx.line}
}

// Err returns the first lexical error.
func (lx *Lexer) Err() error { return lx.err }

func (lx *Lexer) peekByte() byte {
	if lx.pos < len(lx.src) {
		return lx.src[lx.pos]
	}
	return 0
}

func (lx *Lexer) at(i int) byte {
	if lx.pos+i < len(lx.src) {
		return lx.src[lx.pos+i]
	}
	return 0
}

// Next returns the next token, inserting semicolons at newlines per
// needSemi.
func (lx *Lexer) Next() Token {
	t := lx.next0()
	lx.last = t.Kind
	return t
}

func (lx *Lexer) next0() Token {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			line := lx.line
			lx.line++
			lx.pos++
			if needSemi(lx.last) {
				return Token{Kind: TokSemi, Line: line}
			}
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '/' && lx.at(1) == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.at(1) == '*':
			lx.pos += 2
			for lx.pos < len(lx.src) && !(lx.src[lx.pos] == '*' && lx.at(1) == '/') {
				if lx.src[lx.pos] == '\n' {
					lx.line++
				}
				lx.pos++
			}
			if lx.pos >= len(lx.src) {
				return lx.errorf("unterminated block comment")
			}
			lx.pos += 2
		default:
			return lx.scan()
		}
	}
	return Token{Kind: TokEOF, Line: lx.line}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (lx *Lexer) scan() Token {
	line := lx.line
	c := lx.src[lx.pos]

	if isIdentStart(c) {
		start := lx.pos
		for lx.pos < len(lx.src) && (isIdentStart(lx.src[lx.pos]) || isDigit(lx.src[lx.pos])) {
			lx.pos++
		}
		text := lx.src[start:lx.pos]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Line: line}
		}
		return Token{Kind: TokIdent, Text: text, Line: line}
	}

	if isDigit(c) {
		start := lx.pos
		base := int64(10)
		if c == '0' && (lx.at(1) == 'x' || lx.at(1) == 'X') {
			base = 16
			lx.pos += 2
		}
		var v int64
		digits := 0
		for lx.pos < len(lx.src) {
			d := lx.src[lx.pos]
			var dv int64
			switch {
			case isDigit(d):
				dv = int64(d - '0')
			case base == 16 && d >= 'a' && d <= 'f':
				dv = int64(d-'a') + 10
			case base == 16 && d >= 'A' && d <= 'F':
				dv = int64(d-'A') + 10
			default:
				goto done
			}
			if dv >= base {
				return lx.errorf("bad digit %q", d)
			}
			v = v*base + dv
			digits++
			lx.pos++
		}
	done:
		if digits == 0 && base == 16 {
			return lx.errorf("malformed hex literal")
		}
		_ = start
		return Token{Kind: TokNumber, Num: v, Line: line}
	}

	if c == '"' {
		lx.pos++
		var sb []byte
		for {
			if lx.pos >= len(lx.src) {
				return lx.errorf("unterminated string")
			}
			ch := lx.src[lx.pos]
			if ch == '"' {
				lx.pos++
				return Token{Kind: TokString, Str: sb, Line: line}
			}
			if ch == '\\' {
				lx.pos++
				e, ok := lx.escape()
				if !ok {
					return lx.errorf("bad escape in string")
				}
				sb = append(sb, e)
				continue
			}
			if ch == '\n' {
				return lx.errorf("newline in string")
			}
			sb = append(sb, ch)
			lx.pos++
		}
	}

	if c == '\'' {
		lx.pos++
		if lx.pos >= len(lx.src) {
			return lx.errorf("unterminated char literal")
		}
		var v byte
		if lx.src[lx.pos] == '\\' {
			lx.pos++
			e, ok := lx.escape()
			if !ok {
				return lx.errorf("bad escape in char literal")
			}
			v = e
		} else {
			v = lx.src[lx.pos]
			lx.pos++
		}
		if lx.peekByte() != '\'' {
			return lx.errorf("unterminated char literal")
		}
		lx.pos++
		return Token{Kind: TokChar, Num: int64(v), Line: line}
	}

	two := func(k TokKind) Token { lx.pos += 2; return Token{Kind: k, Line: line} }
	one := func(k TokKind) Token { lx.pos++; return Token{Kind: k, Line: line} }

	switch {
	case c == '<' && lx.at(1) == '<':
		return two(TokShl)
	case c == '>' && lx.at(1) == '>' && lx.at(2) == '>':
		lx.pos += 3
		return Token{Kind: TokShrU, Line: line}
	case c == '>' && lx.at(1) == '>':
		return two(TokShr)
	case c == '=' && lx.at(1) == '=':
		return two(TokEq)
	case c == '!' && lx.at(1) == '=':
		return two(TokNe)
	case c == '<' && lx.at(1) == '=':
		return two(TokLe)
	case c == '>' && lx.at(1) == '=':
		return two(TokGe)
	case c == '&' && lx.at(1) == '&':
		return two(TokAndAnd)
	case c == '|' && lx.at(1) == '|':
		return two(TokOrOr)
	}

	switch c {
	case '(':
		return one(TokLParen)
	case ')':
		return one(TokRParen)
	case '{':
		return one(TokLBrace)
	case '}':
		return one(TokRBrace)
	case '[':
		return one(TokLBrack)
	case ']':
		return one(TokRBrack)
	case ',':
		return one(TokComma)
	case ';':
		return one(TokSemi)
	case '=':
		return one(TokAssign)
	case '+':
		return one(TokPlus)
	case '-':
		return one(TokMinus)
	case '*':
		return one(TokStar)
	case '/':
		return one(TokSlash)
	case '%':
		return one(TokPercent)
	case '&':
		return one(TokAmp)
	case '|':
		return one(TokPipe)
	case '^':
		return one(TokCaret)
	case '~':
		return one(TokTilde)
	case '!':
		return one(TokBang)
	case '<':
		return one(TokLt)
	case '>':
		return one(TokGt)
	}
	return lx.errorf("unexpected character %q", c)
}

func (lx *Lexer) escape() (byte, bool) {
	if lx.pos >= len(lx.src) {
		return 0, false
	}
	c := lx.src[lx.pos]
	lx.pos++
	switch c {
	case 'n':
		return '\n', true
	case 't':
		return '\t', true
	case 'r':
		return '\r', true
	case '0':
		return 0, true
	case '\\':
		return '\\', true
	case '\'':
		return '\'', true
	case '"':
		return '"', true
	case 'x':
		if lx.pos+1 >= len(lx.src) {
			return 0, false
		}
		hv := func(d byte) (byte, bool) {
			switch {
			case d >= '0' && d <= '9':
				return d - '0', true
			case d >= 'a' && d <= 'f':
				return d - 'a' + 10, true
			case d >= 'A' && d <= 'F':
				return d - 'A' + 10, true
			}
			return 0, false
		}
		h, ok1 := hv(lx.src[lx.pos])
		l, ok2 := hv(lx.src[lx.pos+1])
		if !ok1 || !ok2 {
			return 0, false
		}
		lx.pos += 2
		return h<<4 | l, true
	}
	return 0, false
}

// LexAll tokenizes the whole input (testing convenience).
func LexAll(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t := lx.Next()
		if lx.Err() != nil {
			return nil, lx.Err()
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

// FormatTokens renders tokens for debugging.
func FormatTokens(toks []Token) string {
	var sb strings.Builder
	for _, t := range toks {
		switch t.Kind {
		case TokIdent:
			fmt.Fprintf(&sb, "%s ", t.Text)
		case TokNumber, TokChar:
			fmt.Fprintf(&sb, "%d ", t.Num)
		case TokString:
			fmt.Fprintf(&sb, "%q ", t.Str)
		default:
			fmt.Fprintf(&sb, "%v ", t.Kind)
		}
	}
	return strings.TrimSpace(sb.String())
}
