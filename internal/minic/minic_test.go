package minic

import (
	"bytes"
	"strings"
	"testing"

	"vulnstack/internal/ir"
)

// run compiles src for width and executes it on the IR interpreter,
// returning output bytes and exit code.
func run(t *testing.T, src string, width int) ([]byte, int64) {
	t.Helper()
	m, err := Compile(src, width)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	ip := ir.NewInterp(m, width, 1<<20)
	ip.MaxSteps = 1 << 24
	if err := ip.Run("_start"); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !ip.Exited {
		t.Fatal("program did not exit")
	}
	return ip.Out, ip.ExitCode
}

func TestLexerBasics(t *testing.T) {
	toks, err := LexAll(`x = 0x1F + 'a' // comment
"str\n" >> << == != <= >= && || /* block */ ~`)
	if err != nil {
		t.Fatal(err)
	}
	got := FormatTokens(toks)
	want := `x = 31 + 97 ; "str\n" >> << == != <= >= && || ~ EOF`
	if got != want {
		t.Fatalf("tokens:\n got %q\nwant %q", got, want)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"@", `"unterminated`, "'a", `"\q"`, "/* unclosed"} {
		if _, err := LexAll(src); err == nil {
			t.Errorf("%q: want lex error", src)
		}
	}
}

func TestHelloOut(t *testing.T) {
	out, code := run(t, `
func main() int {
	out('h')
	out('i')
	return 0
}`, 64)
	if string(out) != "hi" || code != 0 {
		t.Fatalf("out=%q code=%d", out, code)
	}
}

func TestArithAndControl(t *testing.T) {
	src := `
func collatz(n int) int {
	var steps int = 0
	while n != 1 {
		if n % 2 == 0 {
			n = n / 2
		} else {
			n = 3*n + 1
		}
		steps = steps + 1
	}
	return steps
}

func main() int {
	out(collatz(27))  // 111
	out(collatz(1))   // 0
	var i int
	var acc int = 0
	for i = 0; i < 10; i = i + 1 {
		if i == 3 { continue }
		if i == 8 { break }
		acc = acc + i
	}
	out(acc) // 0+1+2+4+5+6+7 = 25
	return 0
}`
	for _, w := range []int{32, 64} {
		out, _ := run(t, src, w)
		if !bytes.Equal(out, []byte{111, 0, 25}) {
			t.Fatalf("width %d: %v", w, out)
		}
	}
}

func TestGlobalsArraysPointers(t *testing.T) {
	src := `
const N = 5
var tbl [N]int = {10, 20, 30, 40, 50}
var g int = 7

func sum(p *int, n int) int {
	var s int = 0
	var i int
	for i = 0; i < n; i = i + 1 {
		s = s + p[i]
	}
	return s
}

func main() int {
	tbl[2] = tbl[2] + g       // 37
	out(sum(tbl, N))          // 157 & 255 = 157
	var local [4]int
	local[0] = 1
	local[1] = 2
	var q *int = &local[0]
	q[2] = q[0] + q[1]        // local[2] = 3
	out(local[2])
	out(*q)
	var pg *int = &g
	*pg = 9
	out(g)
	return 0
}`
	for _, w := range []int{32, 64} {
		out, _ := run(t, src, w)
		if !bytes.Equal(out, []byte{157, 3, 1, 9}) {
			t.Fatalf("width %d: %v", w, out)
		}
	}
}

func TestByteSemantics(t *testing.T) {
	src := `
var buf [8]byte = "ab"

func main() int {
	buf[2] = 300        // truncates to 44
	out(buf[0])
	out(buf[2])
	var b byte = 513    // truncates to 1
	out(b + 1)          // byte promotes to int
	var s [3]byte
	s[0] = 255
	out(s[0] + 1)       // 256 & 255 via out truncation = 0
	return 0
}`
	out, _ := run(t, src, 64)
	if !bytes.Equal(out, []byte{'a', 44, 2, 0}) {
		t.Fatalf("%v", out)
	}
}

func TestShortCircuit(t *testing.T) {
	src := `
var calls int

func bump() int {
	calls = calls + 1
	return 1
}

func main() int {
	if 0 && bump() { out(99) }
	if 1 || bump() { out(1) }
	out(calls)          // neither bump ran
	if 1 && bump() { out(2) }
	out(calls)          // exactly one
	if !(2 < 1) { out(3) }
	out(1 < 2 && 3 > 2) // value context
	out(0 || 0)
	return 0
}`
	out, _ := run(t, src, 64)
	if !bytes.Equal(out, []byte{1, 0, 2, 1, 3, 1, 0}) {
		t.Fatalf("%v", out)
	}
}

func TestWidthDependentWrap(t *testing.T) {
	src := `
func main() int {
	var x int = 0x7FFFFFFF
	x = x + 1
	if x < 0 {
		out(1)  // wrapped: 32-bit target
	} else {
		out(2)  // 64-bit target
	}
	return 0
}`
	out32v, _ := run(t, src, 32)
	out64v, _ := run(t, src, 64)
	if out32v[0] != 1 || out64v[0] != 2 {
		t.Fatalf("wrap: %v %v", out32v, out64v)
	}
}

func TestShiftAndBitOps(t *testing.T) {
	src := `
func main() int {
	out((1 << 7) & 255)     // 128
	out((-8 >> 1) & 255)    // arithmetic: -4 & 255 = 252
	out((5 ^ 3) | 8)        // 6|8 = 14
	out(~0 & 255)           // 255
	out(-(0 - 7))           // 7
	return 0
}`
	out, _ := run(t, src, 64)
	if !bytes.Equal(out, []byte{128, 252, 14, 255, 7}) {
		t.Fatalf("%v", out)
	}
}

func TestRecursion(t *testing.T) {
	src := `
func fib(n int) int {
	if n < 2 { return n }
	return fib(n-1) + fib(n-2)
}
func main() int {
	out(fib(10)) // 55
	return 0
}`
	out, _ := run(t, src, 64)
	if out[0] != 55 {
		t.Fatalf("%v", out)
	}
}

func TestExitCodeAndFlush(t *testing.T) {
	out, code := run(t, `
func main() int {
	out(1)
	return 42
}`, 64)
	if code != 42 || !bytes.Equal(out, []byte{1}) {
		t.Fatalf("out=%v code=%d", out, code)
	}
	// exit() called explicitly mid-program flushes and stops.
	out, code = run(t, `
func main() int {
	out(9)
	exit(7)
	out(8)
	return 0
}`, 64)
	if code != 7 || !bytes.Equal(out, []byte{9}) {
		t.Fatalf("explicit exit: out=%v code=%d", out, code)
	}
}

func TestOut32LittleEndian(t *testing.T) {
	out, _ := run(t, `
func main() int {
	out32(0x11223344)
	out16(0xAABB)
	return 0
}`, 64)
	want := []byte{0x44, 0x33, 0x22, 0x11, 0xBB, 0xAA}
	if !bytes.Equal(out, want) {
		t.Fatalf("%x", out)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`func main( int {}`,
		`func main() int { if { } }`,
		`var x [3]`,
		`func f() { return } func f() {}`, // duplicate (checker)
		`func main() int { y = 1 }`,       // undefined
		`func main() int { break }`,       // break outside loop
		`const C = x`,                     // non-const
		`var a [0]int`,                    // zero-size array
		`func main() int { var p *int p = 3 }`,
		`func main() int { var a [2]int a = 3 }`,
		`func f(x int) {} func main() int { f(1, 2) }`,
		`func main() int { undefined_fn(1) }`,
	}
	for _, src := range cases {
		if _, err := Compile(src, 64); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestCheckTypes(t *testing.T) {
	// Pointer compatibility.
	bad := `
var a [4]int
func main() int {
	var p *byte = a
	return 0
}`
	if _, err := Compile(bad, 64); err == nil || !strings.Contains(err.Error(), "assign") {
		t.Fatalf("pointer elem mismatch: %v", err)
	}
	good := `
var a [4]int
var b [4]byte
func take(p *int, q *byte) int { return p[0] + q[0] }
func main() int {
	a[0] = 5
	b[0] = 6
	out(take(a, b))
	out(take(&a[0], &b[0]))
	return 0
}`
	out, _ := run(t, good, 64)
	if !bytes.Equal(out, []byte{11, 11}) {
		t.Fatalf("%v", out)
	}
}

func TestPointerArithmetic(t *testing.T) {
	src := `
var a [6]int = {1, 2, 3, 4, 5, 6}
func main() int {
	var p *int = a
	p = p + 2
	out(*p)        // 3
	out(p[1])      // 4
	p = p - 1
	out(*p)        // 2
	var q *int = a + 5
	out(*q)        // 6
	if q > p { out(1) }
	return 0
}`
	for _, w := range []int{32, 64} {
		out, _ := run(t, src, w)
		if !bytes.Equal(out, []byte{3, 4, 2, 6, 1}) {
			t.Fatalf("width %d: %v", w, out)
		}
	}
}

func TestNestedScopesShadowing(t *testing.T) {
	src := `
var x int = 1
func main() int {
	out(x)
	var x int = 2
	out(x)
	{
		var x int = 3
		out(x)
	}
	out(x)
	return 0
}`
	out, _ := run(t, src, 64)
	if !bytes.Equal(out, []byte{1, 2, 3, 2}) {
		t.Fatalf("%v", out)
	}
}

func TestVoidFunctions(t *testing.T) {
	src := `
var n int
func poke(v int) {
	n = v
	if v > 100 { return }
	n = n + 1
}
func main() int {
	poke(5)
	out(n)    // 6
	poke(200)
	out(n & 255) // 200
	return 0
}`
	out, _ := run(t, src, 64)
	if !bytes.Equal(out, []byte{6, 200}) {
		t.Fatalf("%v", out)
	}
}

func TestIRVerifyOnAllPrograms(t *testing.T) {
	// Compile-and-verify is already part of Compile; double-check the
	// module verifies and has a _start.
	m, err := Compile(`func main() int { return 0 }`, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Lookup("_start"); !ok {
		t.Fatal("no _start")
	}
	if _, ok := m.Lookup("exit"); !ok {
		t.Fatal("no prelude exit")
	}
}

func TestDivRemEdgeSemantics(t *testing.T) {
	src := `
func main() int {
	out((7 / 0) & 255)   // -1 & 255 = 255
	out(7 % 0)           // 7
	out((-7 / 2) & 255)  // -3 & 255 = 253
	out((-7 % 2) & 255)  // -1 & 255 = 255
	return 0
}`
	out, _ := run(t, src, 64)
	if !bytes.Equal(out, []byte{255, 7, 253, 255}) {
		t.Fatalf("%v", out)
	}
}

func TestWatchdogOnInfiniteLoop(t *testing.T) {
	m, err := Compile(`func main() int { while 1 { } return 0 }`, 64)
	if err != nil {
		t.Fatal(err)
	}
	ip := ir.NewInterp(m, 64, 1<<20)
	ip.MaxSteps = 10000
	if err := ip.Run("_start"); err == nil {
		t.Fatal("want watchdog error")
	}
}

func TestStackOverflowDetected(t *testing.T) {
	m, err := Compile(`
func rec(n int) int {
	var pad [64]int
	pad[0] = n
	return rec(n + pad[0] - n + 1)
}
func main() int { return rec(0) }`, 64)
	if err != nil {
		t.Fatal(err)
	}
	ip := ir.NewInterp(m, 64, 1<<20)
	ip.MaxSteps = 1 << 30
	err = ip.Run("_start")
	if err == nil || !strings.Contains(err.Error(), "stack") {
		t.Fatalf("want stack overflow, got %v", err)
	}
}
