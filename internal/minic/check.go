package minic

import "fmt"

// SymKind classifies resolved names.
type SymKind int

const (
	SymConst SymKind = iota
	SymGlobal
	SymLocal // includes parameters
	SymFunc
)

// Symbol is a resolved program entity.
type Symbol struct {
	Kind      SymKind
	Name      string
	Type      Type
	ConstVal  int64
	IsParam   bool
	ParamIdx  int
	LocalID   int // dense per-function local index
	AddrTaken bool
}

// GlobalInfo is a checked global with resolved type and initializer.
type GlobalInfo struct {
	Decl     *GlobalDecl
	Sym      *Symbol
	InitVals []int64 // scalar/array element values
	InitStr  []byte
}

// FuncInfo is a checked function.
type FuncInfo struct {
	Decl   *FuncDecl
	Sym    *Symbol
	Locals []*Symbol // params first, then locals in declaration order
}

// Program is the checked form consumed by the IR generator.
type Program struct {
	File     *File
	Consts   map[string]int64
	Globals  []*GlobalInfo
	Funcs    map[string]*FuncInfo
	FuncList []*FuncInfo
	ExprType map[Expr]Type
	Refs     map[*IdentExpr]*Symbol
}

type checker struct {
	prog   *Program
	scopes []map[string]*Symbol
	fn     *FuncInfo
	loops  int
	errs   []string
}

// Check type-checks a parsed file.
func Check(f *File) (*Program, error) {
	c := &checker{prog: &Program{
		File:     f,
		Consts:   make(map[string]int64),
		Funcs:    make(map[string]*FuncInfo),
		ExprType: make(map[Expr]Type),
		Refs:     make(map[*IdentExpr]*Symbol),
	}}
	c.push()
	c.collect(f)
	for _, fd := range f.Funcs {
		c.checkFunc(fd)
	}
	if len(c.errs) > 0 {
		return nil, fmt.Errorf("minic check: %s (and %d more)", c.errs[0], len(c.errs)-1)
	}
	return c.prog, nil
}

func (c *checker) errorf(line int, format string, args ...any) {
	c.errs = append(c.errs, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) define(line int, s *Symbol) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[s.Name]; dup {
		c.errorf(line, "redefinition of %q", s.Name)
	}
	top[s.Name] = s
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

// resolveType evaluates pending array-size expressions.
func (c *checker) resolveType(line int, t Type) Type {
	if t.Kind == KindArr {
		n, ok := c.constEval(t.SizeX)
		if !ok || n <= 0 || n > 1<<24 {
			c.errorf(line, "array size must be a positive constant")
			n = 1
		}
		t.N = int(n)
		t.SizeX = nil
	}
	return t
}

// collect registers consts, globals and function signatures (top level,
// in order: consts may reference earlier consts).
func (c *checker) collect(f *File) {
	for _, cd := range f.Consts {
		v, ok := c.constEval(cd.X)
		if !ok {
			c.errorf(cd.Line, "const %s: not a constant expression", cd.Name)
		}
		c.prog.Consts[cd.Name] = v
		c.define(cd.Line, &Symbol{Kind: SymConst, Name: cd.Name, Type: TypeInt, ConstVal: v})
	}
	for _, g := range f.Globals {
		t := c.resolveType(g.Line, g.Type)
		sym := &Symbol{Kind: SymGlobal, Name: g.Name, Type: t}
		c.define(g.Line, sym)
		gi := &GlobalInfo{Decl: g, Sym: sym}
		switch {
		case g.InitStr != nil:
			if t.Kind != KindArr || t.Elem != KindByte {
				c.errorf(g.Line, "string initializer requires a byte array")
			} else if len(g.InitStr) > t.N {
				c.errorf(g.Line, "string initializer longer than array")
			}
			gi.InitStr = g.InitStr
		case g.InitList != nil:
			for _, e := range g.InitList {
				v, ok := c.constEval(e)
				if !ok {
					c.errorf(g.Line, "global %s: initializer must be constant", g.Name)
				}
				gi.InitVals = append(gi.InitVals, v)
			}
			switch t.Kind {
			case KindArr:
				if len(gi.InitVals) > t.N {
					c.errorf(g.Line, "too many initializers for %s", g.Name)
				}
			case KindInt, KindByte:
				if len(gi.InitVals) != 1 {
					c.errorf(g.Line, "scalar %s takes one initializer", g.Name)
				}
			default:
				c.errorf(g.Line, "pointer globals cannot be initialized")
			}
		}
		c.prog.Globals = append(c.prog.Globals, gi)
	}
	for _, fd := range f.Funcs {
		if fd.Name == "__syscall" {
			c.errorf(fd.Line, "__syscall is a builtin")
		}
		sym := &Symbol{Kind: SymFunc, Name: fd.Name, Type: fd.Ret}
		c.define(fd.Line, sym)
		fi := &FuncInfo{Decl: fd, Sym: sym}
		c.prog.Funcs[fd.Name] = fi
		c.prog.FuncList = append(c.prog.FuncList, fi)
	}
}

// constEval evaluates a compile-time constant expression. Only consts
// defined earlier are visible.
func (c *checker) constEval(e Expr) (int64, bool) {
	switch x := e.(type) {
	case *NumExpr:
		return x.Val, true
	case *IdentExpr:
		if v, ok := c.prog.Consts[x.Name]; ok {
			return v, true
		}
		return 0, false
	case *UnaryExpr:
		v, ok := c.constEval(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case TokMinus:
			return -v, true
		case TokTilde:
			return ^v, true
		case TokBang:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *BinExpr:
		a, ok1 := c.constEval(x.X)
		b, ok2 := c.constEval(x.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case TokPlus:
			return a + b, true
		case TokMinus:
			return a - b, true
		case TokStar:
			return a * b, true
		case TokSlash:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case TokPercent:
			if b == 0 {
				return 0, false
			}
			return a % b, true
		case TokAmp:
			return a & b, true
		case TokPipe:
			return a | b, true
		case TokCaret:
			return a ^ b, true
		case TokShl:
			if b < 0 || b > 63 {
				return 0, false
			}
			return a << uint(b), true
		case TokShr:
			if b < 0 || b > 63 {
				return 0, false
			}
			return a >> uint(b), true
		case TokShrU:
			if b < 0 || b > 63 {
				return 0, false
			}
			return int64(uint64(a) >> uint(b)), true
		}
		return 0, false
	}
	return 0, false
}

func (c *checker) checkFunc(fd *FuncDecl) {
	fi := c.prog.Funcs[fd.Name]
	c.fn = fi
	c.push()
	for i := range fd.Params {
		p := &fd.Params[i]
		t := c.resolveType(fd.Line, p.Type)
		sym := &Symbol{Kind: SymLocal, Name: p.Name, Type: t, IsParam: true, ParamIdx: i, LocalID: len(fi.Locals)}
		fi.Locals = append(fi.Locals, sym)
		c.define(fd.Line, sym)
	}
	c.checkStmts(fd.Body)
	c.pop()
	c.fn = nil
}

func (c *checker) checkStmts(stmts []Stmt) {
	for _, s := range stmts {
		c.checkStmt(s)
	}
}

func (c *checker) checkStmt(s Stmt) {
	switch st := s.(type) {
	case *VarStmt:
		t := c.resolveType(st.Line, st.Type)
		st.Type = t
		sym := &Symbol{Kind: SymLocal, Name: st.Name, Type: t, LocalID: len(c.fn.Locals)}
		if st.Init != nil {
			if t.Kind == KindArr {
				c.errorf(st.Line, "array locals cannot have initializers")
			} else {
				it := c.checkExpr(st.Init)
				c.checkAssignable(st.Line, t, it)
			}
		}
		c.fn.Locals = append(c.fn.Locals, sym)
		c.define(st.Line, sym)
	case *AssignStmt:
		lt := c.checkLValue(st.LHS)
		rt := c.checkExpr(st.RHS)
		c.checkAssignable(st.Line, lt, rt)
	case *ExprStmt:
		c.checkExpr(st.X)
	case *IfStmt:
		c.checkCond(st.Line, st.Cond)
		c.push()
		c.checkStmts(st.Then)
		c.pop()
		if st.Else != nil {
			c.push()
			c.checkStmts(st.Else)
			c.pop()
		}
	case *WhileStmt:
		c.checkCond(st.Line, st.Cond)
		c.loops++
		c.push()
		c.checkStmts(st.Body)
		c.pop()
		c.loops--
	case *ForStmt:
		c.push()
		if st.Init != nil {
			c.checkStmt(st.Init)
		}
		if st.Cond != nil {
			c.checkCond(st.Line, st.Cond)
		}
		if st.Post != nil {
			c.checkStmt(st.Post)
		}
		c.loops++
		c.checkStmts(st.Body)
		c.loops--
		c.pop()
	case *ReturnStmt:
		ret := c.fn.Decl.Ret
		if st.X == nil {
			if ret.Kind != KindVoid {
				c.errorf(st.Line, "%s must return a value", c.fn.Decl.Name)
			}
			return
		}
		if ret.Kind == KindVoid {
			c.errorf(st.Line, "%s returns no value", c.fn.Decl.Name)
			return
		}
		t := c.checkExpr(st.X)
		c.checkAssignable(st.Line, ret, t)
	case *BreakStmt:
		if c.loops == 0 {
			c.errorf(st.Line, "break outside loop")
		}
	case *ContinueStmt:
		if c.loops == 0 {
			c.errorf(st.Line, "continue outside loop")
		}
	case *BlockStmt:
		c.push()
		c.checkStmts(st.Body)
		c.pop()
	}
}

func (c *checker) checkCond(line int, e Expr) {
	t := c.checkExpr(e)
	if !t.IsScalar() && t.Kind != KindPtr {
		c.errorf(line, "condition must be scalar, got %s", t)
	}
}

// checkAssignable verifies rt can be assigned into lt.
func (c *checker) checkAssignable(line int, lt, rt Type) {
	switch lt.Kind {
	case KindInt, KindByte:
		if !rt.IsScalar() {
			c.errorf(line, "cannot assign %s to %s", rt, lt)
		}
	case KindPtr:
		// Pointer := pointer of same element, or array decay.
		if rt.Kind == KindPtr && rt.Elem == lt.Elem {
			return
		}
		if rt.Kind == KindArr && rt.Elem == lt.Elem {
			return
		}
		c.errorf(line, "cannot assign %s to %s", rt, lt)
	default:
		c.errorf(line, "cannot assign to %s", lt)
	}
}

// checkLValue types an expression appearing on the left of '='.
func (c *checker) checkLValue(e Expr) Type {
	switch x := e.(type) {
	case *IdentExpr:
		t := c.checkExpr(e)
		sym := c.prog.Refs[x]
		if sym == nil || sym.Kind == SymConst || sym.Kind == SymFunc {
			c.errorf(x.Line, "%q is not assignable", x.Name)
			return TypeInt
		}
		if sym.Type.Kind == KindArr {
			c.errorf(x.Line, "cannot assign to array %q", x.Name)
		}
		return t
	case *IndexExpr:
		return c.checkExpr(e)
	case *UnaryExpr:
		if x.Op == TokStar {
			return c.checkExpr(e)
		}
	}
	c.errorf(e.exprLine(), "expression is not assignable")
	return TypeInt
}

// checkExpr types an expression and records the result.
func (c *checker) checkExpr(e Expr) Type {
	t := c.typeOf(e)
	c.prog.ExprType[e] = t
	return t
}

func (c *checker) typeOf(e Expr) Type {
	switch x := e.(type) {
	case *NumExpr:
		return TypeInt
	case *IdentExpr:
		sym := c.lookup(x.Name)
		if sym == nil {
			c.errorf(x.Line, "undefined: %q", x.Name)
			return TypeInt
		}
		if sym.Kind == SymFunc {
			c.errorf(x.Line, "function %q used as value", x.Name)
			return TypeInt
		}
		c.prog.Refs[x] = sym
		if sym.Kind == SymConst {
			return TypeInt
		}
		return sym.Type

	case *UnaryExpr:
		switch x.Op {
		case TokMinus, TokTilde, TokBang:
			t := c.checkExpr(x.X)
			if !t.IsScalar() {
				c.errorf(x.Line, "unary %v requires a scalar, got %s", x.Op, t)
			}
			return TypeInt
		case TokStar:
			t := c.checkExpr(x.X)
			if t.Kind != KindPtr {
				c.errorf(x.Line, "cannot dereference %s", t)
				return TypeInt
			}
			return Type{Kind: t.Elem}
		case TokAmp:
			return c.checkAddrOf(x)
		}
		c.errorf(x.Line, "bad unary operator")
		return TypeInt

	case *BinExpr:
		xt := c.checkExpr(x.X)
		yt := c.checkExpr(x.Y)
		switch x.Op {
		case TokAndAnd, TokOrOr:
			okT := func(t Type) bool { return t.IsScalar() || t.Kind == KindPtr }
			if !okT(xt) || !okT(yt) {
				c.errorf(x.Line, "%v requires scalar operands", x.Op)
			}
			return TypeInt
		case TokEq, TokNe, TokLt, TokLe, TokGt, TokGe:
			if xt.Kind == KindPtr || yt.Kind == KindPtr || xt.Kind == KindArr || yt.Kind == KindArr {
				// Pointer comparisons (arrays decay).
				xe, ye := ptrElem(xt), ptrElem(yt)
				if xe != ye {
					c.errorf(x.Line, "comparing %s with %s", xt, yt)
				}
				return TypeInt
			}
			if !xt.IsScalar() || !yt.IsScalar() {
				c.errorf(x.Line, "comparison requires scalars")
			}
			return TypeInt
		case TokPlus, TokMinus:
			// Pointer arithmetic: ptr ± int (arrays decay).
			if xt.Kind == KindPtr || xt.Kind == KindArr {
				if !yt.IsScalar() {
					c.errorf(x.Line, "pointer arithmetic requires an integer offset")
				}
				return PtrTo(xt.Elem)
			}
			if (yt.Kind == KindPtr || yt.Kind == KindArr) && x.Op == TokPlus {
				if !xt.IsScalar() {
					c.errorf(x.Line, "pointer arithmetic requires an integer offset")
				}
				return PtrTo(yt.Elem)
			}
			fallthrough
		default:
			if !xt.IsScalar() || !yt.IsScalar() {
				c.errorf(x.Line, "operator %v requires scalar operands (%s, %s)", x.Op, xt, yt)
			}
			return TypeInt
		}

	case *IndexExpr:
		bt := c.checkExpr(x.X)
		it := c.checkExpr(x.I)
		if !it.IsScalar() {
			c.errorf(x.Line, "index must be scalar")
		}
		switch bt.Kind {
		case KindArr, KindPtr:
			return Type{Kind: bt.Elem}
		}
		c.errorf(x.Line, "cannot index %s", bt)
		return TypeInt

	case *CallExpr:
		if x.Name == "__syscall" {
			if len(x.Args) < 1 || len(x.Args) > 3 {
				c.errorf(x.Line, "__syscall takes 1 to 3 arguments")
			}
			for _, a := range x.Args {
				at := c.checkExpr(a)
				if !at.IsScalar() && at.Kind != KindPtr && at.Kind != KindArr {
					c.errorf(x.Line, "__syscall argument must be scalar or pointer")
				}
			}
			return TypeInt
		}
		fi, ok := c.prog.Funcs[x.Name]
		if !ok {
			c.errorf(x.Line, "call to undefined function %q", x.Name)
			for _, a := range x.Args {
				c.checkExpr(a)
			}
			return TypeInt
		}
		if len(x.Args) != len(fi.Decl.Params) {
			c.errorf(x.Line, "%s: %d arguments, want %d", x.Name, len(x.Args), len(fi.Decl.Params))
		}
		for i, a := range x.Args {
			at := c.checkExpr(a)
			if i < len(fi.Decl.Params) {
				pt := c.resolveType(x.Line, fi.Decl.Params[i].Type)
				c.checkAssignable(x.Line, pt, at)
			}
		}
		return fi.Decl.Ret
	}
	c.errorf(e.exprLine(), "unsupported expression")
	return TypeInt
}

func ptrElem(t Type) TypeKind {
	if t.Kind == KindPtr || t.Kind == KindArr {
		return t.Elem
	}
	return KindVoid
}

// checkAddrOf types &x and marks address-taken locals.
func (c *checker) checkAddrOf(u *UnaryExpr) Type {
	switch x := u.X.(type) {
	case *IdentExpr:
		t := c.checkExpr(x)
		sym := c.prog.Refs[x]
		if sym == nil || sym.Kind == SymConst || sym.Kind == SymFunc {
			c.errorf(u.Line, "cannot take address of %q", x.Name)
			return PtrTo(KindInt)
		}
		if sym.Kind == SymLocal {
			sym.AddrTaken = true
		}
		switch t.Kind {
		case KindArr:
			return PtrTo(t.Elem)
		case KindInt:
			return PtrTo(KindInt)
		case KindByte:
			return PtrTo(KindByte)
		case KindPtr:
			c.errorf(u.Line, "address of pointer variables is not supported")
			return PtrTo(KindInt)
		}
	case *IndexExpr:
		t := c.checkExpr(x)
		if !t.IsScalar() {
			c.errorf(u.Line, "cannot take address of %s element", t)
			return PtrTo(KindInt)
		}
		if t.Kind == KindByte {
			return PtrTo(KindByte)
		}
		return PtrTo(KindInt)
	}
	c.errorf(u.Line, "cannot take address of this expression")
	return PtrTo(KindInt)
}
