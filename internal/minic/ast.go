package minic

// Type describes a MiniC type.
type Type struct {
	Kind TypeKind
	Elem TypeKind // element kind for pointers and arrays
	N    int      // array length (resolved by the checker)
	// SizeX is the unevaluated array-size expression from the parser;
	// the checker evaluates it into N.
	SizeX Expr
}

// TypeKind enumerates base type kinds.
type TypeKind int

const (
	KindVoid TypeKind = iota
	KindInt
	KindByte
	KindPtr
	KindArr
)

// Convenience constructors.
var (
	TypeVoid = Type{Kind: KindVoid}
	TypeInt  = Type{Kind: KindInt}
	TypeByte = Type{Kind: KindByte}
)

// PtrTo returns a pointer type to elem (KindInt or KindByte).
func PtrTo(elem TypeKind) Type { return Type{Kind: KindPtr, Elem: elem} }

// ArrOf returns an array type.
func ArrOf(elem TypeKind, n int) Type { return Type{Kind: KindArr, Elem: elem, N: n} }

// IsScalar reports whether t is int or byte.
func (t Type) IsScalar() bool { return t.Kind == KindInt || t.Kind == KindByte }

func (t Type) String() string {
	switch t.Kind {
	case KindVoid:
		return "void"
	case KindInt:
		return "int"
	case KindByte:
		return "byte"
	case KindPtr:
		if t.Elem == KindByte {
			return "*byte"
		}
		return "*int"
	case KindArr:
		if t.Elem == KindByte {
			return "[N]byte"
		}
		return "[N]int"
	}
	return "?"
}

// --- Expressions ---

// Expr is the expression interface; Line is for diagnostics.
type Expr interface{ exprLine() int }

// NumExpr is an integer literal (numbers and char literals).
type NumExpr struct {
	Line int
	Val  int64
}

// IdentExpr references a variable, constant or function name.
type IdentExpr struct {
	Line int
	Name string
}

// UnaryExpr is -x, !x, ~x, *x or &x.
type UnaryExpr struct {
	Line int
	Op   TokKind
	X    Expr
}

// BinExpr is a binary operation, including && and || (short-circuit).
type BinExpr struct {
	Line int
	Op   TokKind
	X, Y Expr
}

// IndexExpr is a[i] on arrays and pointers.
type IndexExpr struct {
	Line int
	X    Expr
	I    Expr
}

// CallExpr is f(args...) including the __syscall builtin.
type CallExpr struct {
	Line int
	Name string
	Args []Expr
}

func (e *NumExpr) exprLine() int   { return e.Line }
func (e *IdentExpr) exprLine() int { return e.Line }
func (e *UnaryExpr) exprLine() int { return e.Line }
func (e *BinExpr) exprLine() int   { return e.Line }
func (e *IndexExpr) exprLine() int { return e.Line }
func (e *CallExpr) exprLine() int  { return e.Line }

// --- Statements ---

// Stmt is the statement interface.
type Stmt interface{ stmtLine() int }

// VarStmt declares a local variable with optional initializer.
type VarStmt struct {
	Line int
	Name string
	Type Type
	Init Expr // nil for zero value
}

// AssignStmt is lhs = rhs.
type AssignStmt struct {
	Line int
	LHS  Expr
	RHS  Expr
}

// ExprStmt evaluates an expression for its side effects (calls).
type ExprStmt struct {
	Line int
	X    Expr
}

// IfStmt with optional else (else-if chains nest).
type IfStmt struct {
	Line int
	Cond Expr
	Then []Stmt
	Else []Stmt // nil if absent
}

// WhileStmt loops while cond is non-zero.
type WhileStmt struct {
	Line int
	Cond Expr
	Body []Stmt
}

// ForStmt is for init; cond; post { body }. Init and Post may be nil
// (they are AssignStmt or ExprStmt); Cond may be nil (infinite).
type ForStmt struct {
	Line int
	Init Stmt
	Cond Expr
	Post Stmt
	Body []Stmt
}

// ReturnStmt returns from the function, optionally with a value.
type ReturnStmt struct {
	Line int
	X    Expr // nil for void
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt jumps to the innermost loop's post/condition.
type ContinueStmt struct{ Line int }

// BlockStmt is a nested scope.
type BlockStmt struct {
	Line int
	Body []Stmt
}

func (s *VarStmt) stmtLine() int      { return s.Line }
func (s *AssignStmt) stmtLine() int   { return s.Line }
func (s *ExprStmt) stmtLine() int     { return s.Line }
func (s *IfStmt) stmtLine() int       { return s.Line }
func (s *WhileStmt) stmtLine() int    { return s.Line }
func (s *ForStmt) stmtLine() int      { return s.Line }
func (s *ReturnStmt) stmtLine() int   { return s.Line }
func (s *BreakStmt) stmtLine() int    { return s.Line }
func (s *ContinueStmt) stmtLine() int { return s.Line }
func (s *BlockStmt) stmtLine() int    { return s.Line }

// --- Declarations ---

// ConstDecl is a compile-time integer constant.
type ConstDecl struct {
	Line int
	Name string
	X    Expr // constant expression
}

// GlobalDecl is a module-level variable with optional initializer.
type GlobalDecl struct {
	Line     int
	Name     string
	Type     Type
	InitList []Expr // scalar: one element; arrays: element list
	InitStr  []byte // byte arrays initialized from a string literal
}

// Param is a function parameter (scalar or pointer).
type Param struct {
	Name string
	Type Type
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Line   int
	Name   string
	Params []Param
	Ret    Type // TypeInt or TypeVoid
	Body   []Stmt
}

// File is a parsed MiniC source file.
type File struct {
	Consts  []*ConstDecl
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}
