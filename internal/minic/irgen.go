package minic

import (
	"fmt"

	"vulnstack/internal/ir"
)

// Generate lowers a checked program to IR for the given word width
// (32 or 64). Globals and int loads/stores are sized by the width, so
// the module is target-specific even though the source is portable —
// matching the paper's same-source / two-ISA setup.
func Generate(p *Program, width int) (*ir.Module, error) {
	if width != 32 && width != 64 {
		return nil, fmt.Errorf("minic: unsupported width %d", width)
	}
	g := &irgen{prog: p, width: width, word: width / 8}
	m := &ir.Module{}

	for _, gi := range p.Globals {
		m.Globals = append(m.Globals, g.lowerGlobal(gi))
	}
	for _, fi := range p.FuncList {
		f, err := g.lowerFunc(fi)
		if err != nil {
			return nil, err
		}
		m.Funcs = append(m.Funcs, f)
	}
	start, err := g.makeStart(p)
	if err != nil {
		return nil, err
	}
	m.Funcs = append(m.Funcs, start)
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("minic: generated invalid IR: %w", err)
	}
	return m, nil
}

type irgen struct {
	prog  *Program
	width int
	word  int

	fn      *ir.Func
	fi      *FuncInfo
	blocks  []*ir.Block
	cur     int
	vregOf  map[*Symbol]int // register-resident scalars
	slotOf  map[*Symbol]int // frame-resident locals
	brk     []int           // break target stack (block ids)
	cont    []int           // continue target stack
	termed  bool            // current block already has a terminator
	genErrs []string
}

func (g *irgen) typeSize(k TypeKind) int {
	if k == KindByte {
		return 1
	}
	return g.word
}

func (g *irgen) lowerGlobal(gi *GlobalInfo) *ir.Global {
	t := gi.Sym.Type
	var size int
	switch t.Kind {
	case KindArr:
		size = t.N * g.typeSize(t.Elem)
	default:
		size = g.typeSize(t.Kind)
	}
	init := make([]byte, 0, size)
	switch {
	case gi.InitStr != nil:
		init = append(init, gi.InitStr...)
	case gi.InitVals != nil:
		es := g.typeSize(elemKind(t))
		for _, v := range gi.InitVals {
			for i := 0; i < es; i++ {
				init = append(init, byte(uint64(v)>>(8*i)))
			}
		}
	}
	if len(init) > size {
		init = init[:size]
	}
	return &ir.Global{Name: gi.Sym.Name, Size: size, Init: init}
}

func elemKind(t Type) TypeKind {
	if t.Kind == KindArr || t.Kind == KindPtr {
		return t.Elem
	}
	return t.Kind
}

// --- function lowering ---

func (g *irgen) lowerFunc(fi *FuncInfo) (*ir.Func, error) {
	g.fi = fi
	g.fn = &ir.Func{
		Name:    fi.Decl.Name,
		NumArgs: len(fi.Decl.Params),
		HasRet:  fi.Decl.Ret.Kind != KindVoid,
	}
	g.blocks = nil
	g.vregOf = make(map[*Symbol]int)
	g.slotOf = make(map[*Symbol]int)
	g.brk, g.cont = nil, nil
	g.newBlock()

	// Parameters occupy vregs 0..n-1. Address-taken parameters are
	// copied into a frame slot at entry.
	g.fn.NumVReg = len(fi.Decl.Params)
	for i, sym := range fi.Locals {
		if !sym.IsParam {
			break
		}
		if sym.AddrTaken {
			slot := g.addSlot(sym)
			addr := g.emitDst(ir.Instr{Op: ir.OpFrame, Slot: slot})
			g.emit(ir.Instr{Op: ir.OpStore, A: addr, B: i, Size: g.typeSize(sym.Type.Kind)})
			g.slotOf[sym] = slot
		} else {
			if sym.Type.Kind == KindByte {
				// Byte parameters are truncated at entry.
				g.emit(ir.Instr{Op: ir.OpCopy, Dst: i, A: g.truncByte(i)})
			}
			g.vregOf[sym] = i
		}
	}

	g.genStmts(fi.Decl.Body)
	if !g.termed {
		// Implicit return (0 for value-returning functions).
		if g.fn.HasRet {
			z := g.emitDst(ir.Instr{Op: ir.OpConst, Imm: 0})
			g.emit(ir.Instr{Op: ir.OpRet, A: z})
		} else {
			g.emit(ir.Instr{Op: ir.OpRet, A: -1})
		}
	}
	g.sealEmptyBlocks()
	g.fn.Blocks = g.blocks
	if len(g.genErrs) > 0 {
		return nil, fmt.Errorf("minic irgen %s: %s", fi.Decl.Name, g.genErrs[0])
	}
	return g.fn, nil
}

// makeStart synthesizes the entry function: exit(main()).
func (g *irgen) makeStart(p *Program) (*ir.Func, error) {
	mainFi, ok := p.Funcs["main"]
	if !ok {
		return nil, fmt.Errorf("minic: no main function")
	}
	if _, ok := p.Funcs["exit"]; !ok {
		return nil, fmt.Errorf("minic: runtime exit() missing (prelude not linked?)")
	}
	g.fn = &ir.Func{Name: "_start", NumVReg: 1}
	b := &ir.Block{}
	if mainFi.Decl.Ret.Kind != KindVoid {
		b.Instrs = append(b.Instrs,
			ir.Instr{Op: ir.OpCall, Dst: 0, Sym: "main"},
			ir.Instr{Op: ir.OpCall, Dst: -1, Sym: "exit", Args: []int{0}},
		)
	} else {
		b.Instrs = append(b.Instrs,
			ir.Instr{Op: ir.OpCall, Dst: -1, Sym: "main"},
			ir.Instr{Op: ir.OpConst, Dst: 0, Imm: 0},
			ir.Instr{Op: ir.OpCall, Dst: -1, Sym: "exit", Args: []int{0}},
		)
	}
	b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpRet, A: -1})
	g.fn.Blocks = []*ir.Block{b}
	return g.fn, nil
}

func (g *irgen) errorf(line int, format string, args ...any) {
	g.genErrs = append(g.genErrs, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
}

func (g *irgen) newBlock() int {
	g.blocks = append(g.blocks, &ir.Block{})
	g.cur = len(g.blocks) - 1
	g.termed = false
	return g.cur
}

// setBlock switches emission to block id.
func (g *irgen) setBlock(id int) {
	g.cur = id
	g.termed = false
}

func (g *irgen) emit(in ir.Instr) {
	if g.termed {
		// Dead code after a terminator lands in a fresh unreachable
		// block so every block keeps exactly one terminator.
		g.newBlock()
	}
	switch in.Op {
	case ir.OpStore, ir.OpRet, ir.OpBr, ir.OpCondBr:
		in.Dst = -1 // these never define a value
	}
	g.blocks[g.cur].Instrs = append(g.blocks[g.cur].Instrs, in)
	if in.Op == ir.OpRet || in.Op == ir.OpBr || in.Op == ir.OpCondBr {
		g.termed = true
	}
}

func (g *irgen) newVReg() int {
	g.fn.NumVReg++
	return g.fn.NumVReg - 1
}

// emitDst emits an instruction with a fresh destination and returns it.
func (g *irgen) emitDst(in ir.Instr) int {
	d := g.newVReg()
	in.Dst = d
	g.emit(in)
	return d
}

func (g *irgen) addSlot(sym *Symbol) int {
	size := g.typeSize(sym.Type.Kind)
	align := size
	if sym.Type.Kind == KindArr {
		size = sym.Type.N * g.typeSize(sym.Type.Elem)
		align = g.typeSize(sym.Type.Elem)
	}
	g.fn.Slots = append(g.fn.Slots, ir.FrameSlot{Name: sym.Name, Size: size, Align: align})
	return len(g.fn.Slots) - 1
}

// sealEmptyBlocks gives any trailing empty block (an unreachable merge
// point) a return terminator so the verifier's invariants hold.
func (g *irgen) sealEmptyBlocks() {
	for _, b := range g.blocks {
		if len(b.Instrs) != 0 {
			continue
		}
		if g.fn.HasRet {
			z := g.newVReg()
			b.Instrs = append(b.Instrs,
				ir.Instr{Op: ir.OpConst, Dst: z, Imm: 0},
				ir.Instr{Op: ir.OpRet, A: z})
		} else {
			b.Instrs = append(b.Instrs, ir.Instr{Op: ir.OpRet, A: -1, Dst: -1})
		}
	}
}

// --- statements ---

func (g *irgen) genStmts(stmts []Stmt) {
	for _, s := range stmts {
		g.genStmt(s)
	}
}

func (g *irgen) genStmt(s Stmt) {
	switch st := s.(type) {
	case *VarStmt:
		sym := g.findLocal(st)
		if sym == nil {
			g.errorf(st.Line, "internal: local %q not found", st.Name)
			return
		}
		if sym.AddrTaken || sym.Type.Kind == KindArr {
			slot := g.addSlot(sym)
			g.slotOf[sym] = slot
			if st.Init != nil {
				v := g.genExpr(st.Init)
				addr := g.emitDst(ir.Instr{Op: ir.OpFrame, Slot: slot})
				g.emit(ir.Instr{Op: ir.OpStore, A: addr, B: v, Size: g.typeSize(sym.Type.Kind)})
			}
			return
		}
		var v int
		if st.Init != nil {
			v = g.genExpr(st.Init)
			if sym.Type.Kind == KindByte {
				v = g.truncByte(v)
			}
		} else {
			v = g.emitDst(ir.Instr{Op: ir.OpConst, Imm: 0})
		}
		// Copy into a dedicated vreg so reassignments are stable.
		dst := g.newVReg()
		g.vregOf[sym] = dst
		g.emitMove(dst, v)

	case *AssignStmt:
		g.genAssign(st)

	case *ExprStmt:
		g.genExprForEffect(st.X)

	case *IfStmt:
		thenB := g.newBlockDeferred()
		elseB := g.newBlockDeferred()
		endB := g.newBlockDeferred()
		if st.Else == nil {
			elseB = endB
		}
		g.genCond(st.Cond, thenB, elseB)
		g.setBlock(thenB)
		g.genStmts(st.Then)
		g.branchTo(endB)
		if st.Else != nil {
			g.setBlock(elseB)
			g.genStmts(st.Else)
			g.branchTo(endB)
		}
		g.setBlock(endB)

	case *WhileStmt:
		headB := g.newBlockDeferred()
		bodyB := g.newBlockDeferred()
		endB := g.newBlockDeferred()
		g.branchTo(headB)
		g.setBlock(headB)
		g.genCond(st.Cond, bodyB, endB)
		g.setBlock(bodyB)
		g.brk = append(g.brk, endB)
		g.cont = append(g.cont, headB)
		g.genStmts(st.Body)
		g.brk = g.brk[:len(g.brk)-1]
		g.cont = g.cont[:len(g.cont)-1]
		g.branchTo(headB)
		g.setBlock(endB)

	case *ForStmt:
		if st.Init != nil {
			g.genStmt(st.Init)
		}
		headB := g.newBlockDeferred()
		bodyB := g.newBlockDeferred()
		postB := g.newBlockDeferred()
		endB := g.newBlockDeferred()
		g.branchTo(headB)
		g.setBlock(headB)
		if st.Cond != nil {
			g.genCond(st.Cond, bodyB, endB)
		} else {
			g.branchTo(bodyB)
		}
		g.setBlock(bodyB)
		g.brk = append(g.brk, endB)
		g.cont = append(g.cont, postB)
		g.genStmts(st.Body)
		g.brk = g.brk[:len(g.brk)-1]
		g.cont = g.cont[:len(g.cont)-1]
		g.branchTo(postB)
		g.setBlock(postB)
		if st.Post != nil {
			g.genStmt(st.Post)
		}
		g.branchTo(headB)
		g.setBlock(endB)

	case *ReturnStmt:
		if st.X == nil {
			g.emit(ir.Instr{Op: ir.OpRet, A: -1})
			return
		}
		v := g.genExpr(st.X)
		g.emit(ir.Instr{Op: ir.OpRet, A: v})

	case *BreakStmt:
		g.emit(ir.Instr{Op: ir.OpBr, Target: g.brk[len(g.brk)-1]})
	case *ContinueStmt:
		g.emit(ir.Instr{Op: ir.OpBr, Target: g.cont[len(g.cont)-1]})
	case *BlockStmt:
		g.genStmts(st.Body)
	}
}

// findLocal locates the checker symbol for a VarStmt. Locals are
// recorded in declaration order; names may repeat across scopes, so we
// match by identity of declaration order using name + first unclaimed.
func (g *irgen) findLocal(st *VarStmt) *Symbol {
	for _, sym := range g.fi.Locals {
		if sym.IsParam || sym.Name != st.Name {
			continue
		}
		if _, used := g.vregOf[sym]; used {
			continue
		}
		if _, used := g.slotOf[sym]; used {
			continue
		}
		return sym
	}
	return nil
}

// newBlockDeferred reserves a block id without switching to it.
func (g *irgen) newBlockDeferred() int {
	g.blocks = append(g.blocks, &ir.Block{})
	return len(g.blocks) - 1
}

// branchTo emits a jump unless the block is already terminated.
func (g *irgen) branchTo(target int) {
	if !g.termed {
		g.emit(ir.Instr{Op: ir.OpBr, Target: target})
	}
}

// emitMove copies src into an existing vreg dst (non-SSA assignment).
func (g *irgen) emitMove(dst, src int) {
	g.emit(ir.Instr{Op: ir.OpCopy, Dst: dst, A: src})
}

func (g *irgen) truncByte(v int) int {
	m := g.emitDst(ir.Instr{Op: ir.OpConst, Imm: 0xFF})
	return g.emitDst(ir.Instr{Op: ir.OpBin, Bin: ir.And, A: v, B: m})
}

// --- assignment ---

func (g *irgen) genAssign(st *AssignStmt) {
	switch lhs := st.LHS.(type) {
	case *IdentExpr:
		sym := g.prog.Refs[lhs]
		if sym == nil {
			return
		}
		if vreg, ok := g.vregOf[sym]; ok {
			v := g.genExpr(st.RHS)
			if sym.Type.Kind == KindByte {
				v = g.truncByte(v)
			}
			g.emitMove(vreg, v)
			return
		}
		// Frame- or globally-resident scalar.
		v := g.genExpr(st.RHS)
		addr := g.symAddr(sym, lhs.Line)
		g.emit(ir.Instr{Op: ir.OpStore, A: addr, B: v, Size: g.typeSize(sym.Type.Kind)})
	case *IndexExpr:
		addr, size := g.genIndexAddr(lhs)
		v := g.genExpr(st.RHS)
		g.emit(ir.Instr{Op: ir.OpStore, A: addr, B: v, Size: size})
	case *UnaryExpr: // *p = v
		addr := g.genExpr(lhs.X)
		size := g.typeSize(g.prog.ExprType[st.LHS].Kind)
		v := g.genExpr(st.RHS)
		g.emit(ir.Instr{Op: ir.OpStore, A: addr, B: v, Size: size})
	}
}

// symAddr materializes the address of a frame- or module-level symbol.
func (g *irgen) symAddr(sym *Symbol, line int) int {
	if sym.Kind == SymGlobal {
		return g.emitDst(ir.Instr{Op: ir.OpGlobal, Sym: sym.Name})
	}
	slot, ok := g.slotOf[sym]
	if !ok {
		g.errorf(line, "internal: %q has no storage", sym.Name)
		return g.emitDst(ir.Instr{Op: ir.OpConst, Imm: 0})
	}
	return g.emitDst(ir.Instr{Op: ir.OpFrame, Slot: slot})
}

// genIndexAddr computes the byte address and element size of a[i].
func (g *irgen) genIndexAddr(x *IndexExpr) (addr int, size int) {
	baseT := g.prog.ExprType[x.X]
	elem := elemKind(baseT)
	size = g.typeSize(elem)
	base := g.genExpr(x.X) // arrays decay to their address
	idx := g.genExpr(x.I)
	var scaled int
	switch size {
	case 1:
		scaled = idx
	default:
		sh := int64(2)
		if size == 8 {
			sh = 3
		}
		c := g.emitDst(ir.Instr{Op: ir.OpConst, Imm: sh})
		scaled = g.emitDst(ir.Instr{Op: ir.OpBin, Bin: ir.Shl, A: idx, B: c})
	}
	addr = g.emitDst(ir.Instr{Op: ir.OpBin, Bin: ir.Add, A: base, B: scaled})
	return addr, size
}

// --- expressions ---

// genExprForEffect evaluates an expression discarding the result; void
// calls are emitted without a destination.
func (g *irgen) genExprForEffect(e Expr) {
	if call, ok := e.(*CallExpr); ok && call.Name != "__syscall" {
		if fi, ok := g.prog.Funcs[call.Name]; ok && fi.Decl.Ret.Kind == KindVoid {
			args := g.genArgs(call.Args)
			g.emit(ir.Instr{Op: ir.OpCall, Dst: -1, Sym: call.Name, Args: args})
			return
		}
	}
	g.genExpr(e)
}

func (g *irgen) genArgs(args []Expr) []int {
	out := make([]int, len(args))
	for i, a := range args {
		out[i] = g.genExpr(a)
	}
	return out
}

// genExpr evaluates e into a vreg.
func (g *irgen) genExpr(e Expr) int {
	switch x := e.(type) {
	case *NumExpr:
		return g.emitDst(ir.Instr{Op: ir.OpConst, Imm: x.Val})

	case *IdentExpr:
		sym := g.prog.Refs[x]
		if sym == nil {
			return g.emitDst(ir.Instr{Op: ir.OpConst, Imm: 0})
		}
		switch sym.Kind {
		case SymConst:
			return g.emitDst(ir.Instr{Op: ir.OpConst, Imm: sym.ConstVal})
		case SymLocal:
			if vreg, ok := g.vregOf[sym]; ok {
				return vreg
			}
			addr := g.symAddr(sym, x.Line)
			if sym.Type.Kind == KindArr {
				return addr // decay
			}
			return g.loadScalar(addr, sym.Type.Kind)
		case SymGlobal:
			addr := g.emitDst(ir.Instr{Op: ir.OpGlobal, Sym: sym.Name})
			if sym.Type.Kind == KindArr {
				return addr // decay
			}
			return g.loadScalar(addr, sym.Type.Kind)
		}
		return g.emitDst(ir.Instr{Op: ir.OpConst, Imm: 0})

	case *UnaryExpr:
		switch x.Op {
		case TokMinus:
			v := g.genExpr(x.X)
			z := g.emitDst(ir.Instr{Op: ir.OpConst, Imm: 0})
			return g.emitDst(ir.Instr{Op: ir.OpBin, Bin: ir.Sub, A: z, B: v})
		case TokTilde:
			v := g.genExpr(x.X)
			m := g.emitDst(ir.Instr{Op: ir.OpConst, Imm: -1})
			return g.emitDst(ir.Instr{Op: ir.OpBin, Bin: ir.Xor, A: v, B: m})
		case TokBang:
			v := g.genExpr(x.X)
			z := g.emitDst(ir.Instr{Op: ir.OpConst, Imm: 0})
			return g.emitDst(ir.Instr{Op: ir.OpBin, Bin: ir.Eq, A: v, B: z})
		case TokStar:
			addr := g.genExpr(x.X)
			t := g.prog.ExprType[e]
			return g.loadScalar(addr, t.Kind)
		case TokAmp:
			return g.genAddrOf(x)
		}

	case *BinExpr:
		return g.genBin(x)

	case *IndexExpr:
		addr, size := g.genIndexAddr(x)
		unsigned := size == 1
		return g.emitDst(ir.Instr{Op: ir.OpLoad, A: addr, Size: size, Unsigned: unsigned})

	case *CallExpr:
		if x.Name == "__syscall" {
			num := g.genExpr(x.Args[0])
			args := g.genArgs(x.Args[1:])
			return g.emitDst(ir.Instr{Op: ir.OpSyscall, A: num, Args: args})
		}
		args := g.genArgs(x.Args)
		fi := g.prog.Funcs[x.Name]
		if fi != nil && fi.Decl.Ret.Kind == KindVoid {
			g.emit(ir.Instr{Op: ir.OpCall, Dst: -1, Sym: x.Name, Args: args})
			return g.emitDst(ir.Instr{Op: ir.OpConst, Imm: 0})
		}
		return g.emitDst(ir.Instr{Op: ir.OpCall, Sym: x.Name, Args: args})
	}
	g.errorf(e.exprLine(), "internal: unhandled expression")
	return g.emitDst(ir.Instr{Op: ir.OpConst, Imm: 0})
}

func (g *irgen) loadScalar(addr int, k TypeKind) int {
	size := g.typeSize(k)
	return g.emitDst(ir.Instr{Op: ir.OpLoad, A: addr, Size: size, Unsigned: size == 1})
}

func (g *irgen) genAddrOf(u *UnaryExpr) int {
	switch x := u.X.(type) {
	case *IdentExpr:
		sym := g.prog.Refs[x]
		if sym == nil {
			return g.emitDst(ir.Instr{Op: ir.OpConst, Imm: 0})
		}
		return g.symAddr(sym, u.Line)
	case *IndexExpr:
		addr, _ := g.genIndexAddr(x)
		return addr
	}
	g.errorf(u.Line, "internal: bad address-of")
	return g.emitDst(ir.Instr{Op: ir.OpConst, Imm: 0})
}

var binMap = map[TokKind]ir.BinKind{
	TokPlus: ir.Add, TokMinus: ir.Sub, TokStar: ir.Mul, TokSlash: ir.Div,
	TokPercent: ir.Rem, TokAmp: ir.And, TokPipe: ir.Or, TokCaret: ir.Xor,
	TokShl: ir.Shl, TokEq: ir.Eq, TokNe: ir.Ne, TokLt: ir.Lt, TokLe: ir.Le,
	TokGt: ir.Gt, TokGe: ir.Ge,
}

func (g *irgen) genBin(x *BinExpr) int {
	switch x.Op {
	case TokAndAnd, TokOrOr:
		return g.genShortCircuit(x)
	}

	xt := g.prog.ExprType[x.X]
	yt := g.prog.ExprType[x.Y]

	// Pointer arithmetic scales the integer operand by element size.
	if x.Op == TokPlus || x.Op == TokMinus {
		if xt.Kind == KindPtr || xt.Kind == KindArr {
			base := g.genExpr(x.X)
			off := g.scale(g.genExpr(x.Y), g.typeSize(xt.Elem))
			k := ir.Add
			if x.Op == TokMinus {
				k = ir.Sub
			}
			return g.emitDst(ir.Instr{Op: ir.OpBin, Bin: k, A: base, B: off})
		}
		if (yt.Kind == KindPtr || yt.Kind == KindArr) && x.Op == TokPlus {
			off := g.scale(g.genExpr(x.X), g.typeSize(yt.Elem))
			base := g.genExpr(x.Y)
			return g.emitDst(ir.Instr{Op: ir.OpBin, Bin: ir.Add, A: base, B: off})
		}
	}

	a := g.genExpr(x.X)
	b := g.genExpr(x.Y)
	kind, ok := binMap[x.Op]
	if !ok {
		switch x.Op {
		case TokShr:
			// MiniC >> is arithmetic (C-like on signed values).
			kind = ir.AShr
		case TokShrU:
			// MiniC >>> is the logical right shift.
			kind = ir.LShr
		default:
			g.errorf(x.Line, "internal: bad binary op %v", x.Op)
			kind = ir.Add
		}
	}
	return g.emitDst(ir.Instr{Op: ir.OpBin, Bin: kind, A: a, B: b})
}

func (g *irgen) scale(v, size int) int {
	if size == 1 {
		return v
	}
	sh := int64(2)
	if size == 8 {
		sh = 3
	}
	c := g.emitDst(ir.Instr{Op: ir.OpConst, Imm: sh})
	return g.emitDst(ir.Instr{Op: ir.OpBin, Bin: ir.Shl, A: v, B: c})
}

// genShortCircuit lowers && and || with control flow, producing 0/1 in
// a shared result vreg (the IR is not SSA, so both arms write it).
func (g *irgen) genShortCircuit(x *BinExpr) int {
	res := g.newVReg()
	evalY := g.newBlockDeferred()
	setFalse := g.newBlockDeferred()
	setTrue := g.newBlockDeferred()
	end := g.newBlockDeferred()

	if x.Op == TokAndAnd {
		g.genCond(x.X, evalY, setFalse)
	} else {
		g.genCond(x.X, setTrue, evalY)
	}
	g.setBlock(evalY)
	g.genCond(x.Y, setTrue, setFalse)

	g.setBlock(setTrue)
	g.emit(ir.Instr{Op: ir.OpConst, Dst: res, Imm: 1})
	g.emit(ir.Instr{Op: ir.OpBr, Target: end})
	g.setBlock(setFalse)
	g.emit(ir.Instr{Op: ir.OpConst, Dst: res, Imm: 0})
	g.emit(ir.Instr{Op: ir.OpBr, Target: end})
	g.setBlock(end)
	return res
}

// genCond evaluates e as a condition, branching to thenB or elseB.
func (g *irgen) genCond(e Expr, thenB, elseB int) {
	if b, ok := e.(*BinExpr); ok {
		switch b.Op {
		case TokAndAnd:
			mid := g.newBlockDeferred()
			g.genCond(b.X, mid, elseB)
			g.setBlock(mid)
			g.genCond(b.Y, thenB, elseB)
			return
		case TokOrOr:
			mid := g.newBlockDeferred()
			g.genCond(b.X, thenB, mid)
			g.setBlock(mid)
			g.genCond(b.Y, thenB, elseB)
			return
		}
	}
	if u, ok := e.(*UnaryExpr); ok && u.Op == TokBang {
		g.genCond(u.X, elseB, thenB)
		return
	}
	v := g.genExpr(e)
	g.emit(ir.Instr{Op: ir.OpCondBr, A: v, Target: thenB, Else: elseB})
}
