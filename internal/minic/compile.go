package minic

import "vulnstack/internal/ir"

// Prelude is the MiniC runtime, compiled into every program. It provides
// buffered output (flushed through the write syscall, which is where the
// kernel memcpy/DMA behaviour attaches), program exit, and the detect
// hook used by the software fault-tolerance transform.
const Prelude = `
const __OBUF_CAP = 4096

var __obuf [__OBUF_CAP]byte
var __olen int

func __flush() {
	if __olen > 0 {
		__syscall(2, __obuf, __olen)
		__olen = 0
	}
}

func out(c int) {
	__obuf[__olen] = c
	__olen = __olen + 1
	if __olen == __OBUF_CAP {
		__flush()
	}
}

func out16(v int) {
	out(v & 255)
	out((v >> 8) & 255)
}

func out32(v int) {
	out16(v & 65535)
	out16((v >> 16) & 65535)
}

func exit(code int) {
	__flush()
	__syscall(1, code, 0)
}

func detect(code int) {
	__syscall(4, code, 0)
}
`

// RuntimeFuncs returns the names of the runtime-library functions every
// compiled module contains: the prelude functions plus the synthesized
// _start entry stub. This is the authoritative list consumers (the
// hardening transform, the static coverage verifier) use to separate
// user code from the unprotected runtime.
func RuntimeFuncs() []string {
	f, err := Parse(Prelude)
	if err != nil {
		panic("minic: prelude does not parse: " + err.Error())
	}
	names := []string{"_start"}
	for _, fn := range f.Funcs {
		names = append(names, fn.Name)
	}
	return names
}

// mergeFiles concatenates parsed files (prelude first).
func mergeFiles(files ...*File) *File {
	out := &File{}
	for _, f := range files {
		out.Consts = append(out.Consts, f.Consts...)
		out.Globals = append(out.Globals, f.Globals...)
		out.Funcs = append(out.Funcs, f.Funcs...)
	}
	return out
}

// Frontend parses and type-checks a MiniC program together with the
// runtime prelude.
func Frontend(src string) (*Program, error) {
	pre, err := Parse(Prelude)
	if err != nil {
		return nil, err
	}
	user, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Check(mergeFiles(pre, user))
}

// Compile compiles MiniC source (with the runtime prelude) to IR for
// the given word width (32 or 64).
func Compile(src string, width int) (*ir.Module, error) {
	prog, err := Frontend(src)
	if err != nil {
		return nil, err
	}
	return Generate(prog, width)
}
