// Package kernel builds the miniature in-simulation operating system.
// The kernel is real VSA code executed by the simulated processor — its
// instructions run inside the measured program flow, which is exactly the
// distinction the paper draws between PVF (kernel-inclusive) and SVF
// (user-only) measurements.
//
// The kernel provides: the boot path, the trap vector, syscall dispatch
// (exit, write, read, detect, brk), a zero-copy/staged write path that
// programs the output DMA engine (the Escaped-fault path), and panic
// handling for every exception class.
package kernel

import (
	"fmt"

	"vulnstack/internal/asm"
	"vulnstack/internal/dev"
	"vulnstack/internal/isa"
	"vulnstack/internal/mem"
)

// ZeroCopyThreshold is the write() length at or above which the kernel
// skips the staging memcpy and DMAs straight from the user buffer. Large
// flushed output buffers therefore sit in the cache hierarchy until DMA
// time — the long-exposure window that produces Escaped faults.
const ZeroCopyThreshold = 128

// StagingSize is the kernel I/O staging buffer size; writes below the
// zero-copy threshold are memcpy'd here by kernel code.
const StagingSize = 256

// Params configures a kernel build.
type Params struct {
	UserEntry uint64 // PC of the user program's _start
	UserSP    uint64 // initial user stack pointer
	HeapStart uint64 // initial program break for sys_brk
}

// Build assembles the kernel image for the given ISA variant.
func Build(is isa.ISA, p Params) (*asm.Program, error) {
	b := asm.NewBuilder(is, mem.KernBase)
	wb := int64(is.WordBytes())
	nregs := is.NumRegs()
	frame := int64(nregs-1) * wb // save slots for r1..r(n-1)
	// Round the frame to 16 bytes to keep the kernel stack aligned.
	frame = (frame + 15) &^ 15
	slot := func(r int) int64 { return int64(r-1) * wb }

	const (
		tp = isa.RegTMP // scratch
		a0 = isa.RegA0  // syscall number / return value
		a1 = isa.RegA1
		a2 = isa.RegA2
		t1 = 8 // additional kernel scratch registers (saved/restored)
		t2 = 9
		t3 = 10
	)

	// --- boot ---
	b.Label("_start")
	b.Li(isa.RegSP, int64(mem.KernStackTop))
	b.Csrw(isa.CsrKSP, isa.RegSP)
	b.La(tp, "trap_entry")
	b.Csrw(isa.CsrTVEC, tp)
	// Initialize the program break variable.
	b.Li(tp, int64(p.HeapStart))
	b.La(t1, "kbrk")
	b.Sword(tp, 0, t1)
	// Enter the user program.
	b.Li(tp, int64(p.UserEntry))
	b.Csrw(isa.CsrSEPC, tp)
	b.Li(isa.RegSP, int64(p.UserSP))
	b.Eret()

	// --- trap entry ---
	b.Label("trap_entry")
	b.Csrw(isa.CsrUSP, isa.RegSP)
	b.Csrr(isa.RegSP, isa.CsrKSP)
	b.Addi(isa.RegSP, isa.RegSP, -frame)
	for r := 1; r < nregs; r++ {
		if r == isa.RegSP {
			continue
		}
		b.Sword(r, slot(r), isa.RegSP)
	}
	b.Csrr(tp, isa.CsrSCAUSE)
	b.Addi(t1, isa.RegZero, isa.CauseSyscall)
	b.Bne(tp, t1, "panic")

	// --- syscall dispatch (number in a0) ---
	b.Addi(t1, isa.RegZero, isa.SysExit)
	b.Beq(a0, t1, "sys_exit")
	b.Addi(t1, isa.RegZero, isa.SysWrite)
	b.Beq(a0, t1, "sys_write")
	b.Addi(t1, isa.RegZero, isa.SysRead)
	b.Beq(a0, t1, "sys_read")
	b.Addi(t1, isa.RegZero, isa.SysDetect)
	b.Beq(a0, t1, "sys_detect")
	b.Addi(t1, isa.RegZero, isa.SysBrk)
	b.Beq(a0, t1, "sys_brk")
	// Unknown syscall: return -1.
	b.Addi(t1, isa.RegZero, -1)
	b.Sword(t1, slot(a0), isa.RegSP)
	b.Jmp("trap_ret")

	// --- exit(code): halt port ---
	b.Label("sys_exit")
	b.Li(tp, int64(mem.MMIOBase))
	b.Sword(a1, dev.RegHalt, tp)
	// Unreachable: the halt port stops the machine. A fault that skips
	// the halt lands in the panic path below via the jump.
	b.Jmp("panic")

	// --- write(buf, len): staged memcpy or zero-copy DMA ---
	b.Label("sys_write")
	// Reject absurd lengths (defends the kernel against corrupted
	// syscall arguments): len > 1 MiB returns -1.
	b.Li(t1, 1<<20)
	b.Bltu(t1, a2, "write_bad")
	// Zero-length writes return 0 immediately.
	b.Beq(a2, isa.RegZero, "write_done")
	b.Li(t1, ZeroCopyThreshold)
	b.Bgeu(a2, t1, "write_dma") // len >= threshold: zero-copy
	// Staged path: byte-copy the user buffer into the kernel staging
	// buffer (kernel-mode loads and stores inside the program flow).
	b.La(t1, "staging")
	b.Mv(t2, a1)          // src cursor
	b.Add(t3, a1, a2)     // src end
	b.Mv(a1, t1)          // DMA source becomes the staging buffer
	b.Label("copy_loop")
	b.Lbu(tp, 0, t2)
	b.Sb(tp, 0, t1)
	b.Addi(t2, t2, 1)
	b.Addi(t1, t1, 1)
	b.Bltu(t2, t3, "copy_loop")
	// --- program the DMA engine: src in a1, len in a2 ---
	b.Label("write_dma")
	b.Li(tp, int64(mem.MMIOBase))
	b.Sword(a1, dev.RegDMASrc, tp)
	b.Sword(a2, dev.RegDMALen, tp)
	b.Addi(t1, isa.RegZero, 1)
	b.Sword(t1, dev.RegDMACtrl, tp)
	b.Label("write_done")
	b.Sword(a2, slot(a0), isa.RegSP) // return len
	b.Jmp("trap_ret")
	b.Label("write_bad")
	b.Addi(t1, isa.RegZero, -1)
	b.Sword(t1, slot(a0), isa.RegSP)
	b.Jmp("trap_ret")

	// --- read(buf, len): no input device; returns 0 ---
	b.Label("sys_read")
	b.Sword(isa.RegZero, slot(a0), isa.RegSP)
	b.Jmp("trap_ret")

	// --- detect(code): software fault-detection port ---
	b.Label("sys_detect")
	b.Li(tp, int64(mem.MMIOBase))
	b.Sword(a1, dev.RegDetect, tp)
	b.Jmp("panic") // unreachable

	// --- brk(addr): set/query the program break ---
	b.Label("sys_brk")
	b.La(t1, "kbrk")
	b.Beq(a1, isa.RegZero, "brk_query")
	b.Sword(a1, 0, t1)
	b.Label("brk_query")
	b.Lword(t2, 0, t1)
	b.Sword(t2, slot(a0), isa.RegSP)
	b.Jmp("trap_ret")

	// --- return to user ---
	b.Label("trap_ret")
	b.Csrr(tp, isa.CsrSEPC)
	b.Addi(tp, tp, 4) // resume after the ECALL
	b.Csrw(isa.CsrSEPC, tp)
	for r := 1; r < nregs; r++ {
		if r == isa.RegSP {
			continue
		}
		b.Lword(r, slot(r), isa.RegSP)
	}
	b.Addi(isa.RegSP, isa.RegSP, frame)
	b.Csrw(isa.CsrKSP, isa.RegSP)
	b.Csrr(isa.RegSP, isa.CsrUSP)
	b.Eret()

	// --- exceptions: kernel panic ---
	b.Label("panic")
	b.Li(t1, int64(mem.MMIOBase))
	b.Sword(tp, dev.RegPanic, t1) // tp still holds SCAUSE on the trap path
	// The panic port halts; nothing executes past here.
	b.Label("spin")
	b.Jmp("spin")

	// --- kernel data ---
	b.Align(16)
	b.DataLabel("staging")
	b.Zero(StagingSize)
	b.Align(int(wb))
	b.DataLabel("kbrk")
	b.Zero(int(wb))

	prog, err := b.Finish()
	if err != nil {
		return nil, fmt.Errorf("kernel build (%v): %w", is, err)
	}
	if prog.End() > mem.KernDataBase {
		// The kernel image must stay below its data/stack region.
		if prog.End() > mem.KernStackTop-1024 {
			return nil, fmt.Errorf("kernel image too large: ends at %#x", prog.End())
		}
	}
	return prog, nil
}

// Image is a bootable system: kernel + user program loaded in RAM.
type Image struct {
	ISA    isa.ISA
	Kernel *asm.Program
	User   *asm.Program
	// RAM is the pristine loaded memory; clone it per run.
	RAM     *mem.Memory
	Entry   uint64 // kernel boot entry
	RAMSize uint64
}

// BuildImage assembles a kernel matched to the user program and loads
// both into a pristine RAM image.
func BuildImage(user *asm.Program, ramSize uint64) (*Image, error) {
	if ramSize == 0 {
		ramSize = mem.DefaultSize
	}
	heap := (user.End() + 63) &^ 63
	k, err := Build(user.ISA, Params{
		UserEntry: user.Entry,
		UserSP:    mem.UserStackTop(ramSize),
		HeapStart: heap,
	})
	if err != nil {
		return nil, err
	}
	ram := mem.New(ramSize)
	if err := k.Load(ram); err != nil {
		return nil, fmt.Errorf("loading kernel: %w", err)
	}
	if user.TextAddr < mem.UserBase {
		return nil, fmt.Errorf("user text at %#x overlaps kernel space", user.TextAddr)
	}
	if err := user.Load(ram); err != nil {
		return nil, fmt.Errorf("loading user program: %w", err)
	}
	return &Image{
		ISA:     user.ISA,
		Kernel:  k,
		User:    user,
		RAM:     ram,
		Entry:   k.Entry,
		RAMSize: ramSize,
	}, nil
}

// NewMemory returns a fresh RAM copy for one simulation run.
func (im *Image) NewMemory() *mem.Memory { return im.RAM.Clone() }
