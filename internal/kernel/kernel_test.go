package kernel

import (
	"bytes"
	"testing"

	"vulnstack/internal/asm"
	"vulnstack/internal/dev"
	"vulnstack/internal/emu"
	"vulnstack/internal/isa"
	"vulnstack/internal/mem"
)

func userProg(t *testing.T, is isa.ISA, build func(b *asm.Builder)) *Image {
	t.Helper()
	b := asm.NewBuilder(is, mem.UserBase)
	build(b)
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	img, err := BuildImage(p, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func boot(t *testing.T, img *Image) (*emu.CPU, *dev.Bus) {
	t.Helper()
	bus := dev.NewBus(img.NewMemory())
	c := emu.New(img.ISA, bus, img.Entry)
	if !c.Run(1 << 22) {
		t.Fatalf("watchdog (pc=%#x)", c.PC)
	}
	return c, bus
}

func TestKernelFitsReservedRegion(t *testing.T) {
	for _, is := range []isa.ISA{isa.VSA32, isa.VSA64} {
		k, err := Build(is, Params{UserEntry: mem.UserBase, UserSP: 1 << 20, HeapStart: mem.UserBase + 4096})
		if err != nil {
			t.Fatal(err)
		}
		if k.TextAddr != mem.KernBase {
			t.Fatalf("%v: kernel at %#x", is, k.TextAddr)
		}
		if k.End() >= mem.KernStackTop-1024 {
			t.Fatalf("%v: kernel image too large (%#x)", is, k.End())
		}
		if _, ok := k.Symbol("trap_entry"); !ok {
			t.Fatal("trap_entry symbol missing")
		}
	}
}

func TestStagedWritePreservesOrder(t *testing.T) {
	// Two small writes must appear in order via the staging buffer.
	img := userProg(t, isa.VSA64, func(b *asm.Builder) {
		b.Label("_start")
		for _, sym := range []string{"m1", "m2"} {
			b.Li(isa.RegA0, isa.SysWrite)
			b.La(isa.RegA1, sym)
			b.Li(isa.RegA2, 3)
			b.Ecall()
		}
		b.Li(isa.RegA0, isa.SysExit)
		b.Li(isa.RegA1, 0)
		b.Ecall()
		b.DataLabel("m1")
		b.Bytes([]byte("ab\n"))
		b.DataLabel("m2")
		b.Bytes([]byte("cd\n"))
	})
	_, bus := boot(t, img)
	if !bytes.Equal(bus.Out, []byte("ab\ncd\n")) {
		t.Fatalf("out %q", bus.Out)
	}
}

func TestWriteRejectsHugeLength(t *testing.T) {
	img := userProg(t, isa.VSA64, func(b *asm.Builder) {
		b.Label("_start")
		b.Li(isa.RegA0, isa.SysWrite)
		b.La(isa.RegA1, "buf")
		b.Li(isa.RegA2, 1<<21) // > 1 MiB cap
		b.Ecall()
		// Return value must be -1.
		b.Li(5, -1)
		b.Bne(isa.RegA0, 5, "bad")
		b.Li(isa.RegA0, isa.SysExit)
		b.Li(isa.RegA1, 0)
		b.Ecall()
		b.Label("bad")
		b.Li(isa.RegA0, isa.SysExit)
		b.Li(isa.RegA1, 1)
		b.Ecall()
		b.DataLabel("buf")
		b.Zero(8)
	})
	_, bus := boot(t, img)
	if bus.Halt != dev.HaltClean || bus.ExitCode != 0 {
		t.Fatalf("halt=%v code=%d out=%d bytes", bus.Halt, bus.ExitCode, len(bus.Out))
	}
	if len(bus.Out) != 0 {
		t.Fatal("rejected write must not emit output")
	}
}

func TestKernelPreservesUserRegisters(t *testing.T) {
	// Every user register except A0 (the return value) must survive a
	// syscall.
	img := userProg(t, isa.VSA64, func(b *asm.Builder) {
		b.Label("_start")
		for r := 5; r < 32; r++ {
			b.Li(r, int64(r*1000+7))
		}
		b.Li(isa.RegA0, isa.SysRead)
		b.Li(isa.RegA1, 0)
		b.Li(isa.RegA2, 0)
		b.Ecall()
		for r := 8; r < 32; r++ { // r5-r7 were syscall args
			b.Li(isa.RegTMP, int64(r*1000+7))
			b.Bne(isa.RegTMP, r, "clobbered")
		}
		b.Li(isa.RegA0, isa.SysExit)
		b.Li(isa.RegA1, 0)
		b.Ecall()
		b.Label("clobbered")
		b.Li(isa.RegA0, isa.SysExit)
		b.Li(isa.RegA1, 1)
		b.Ecall()
	})
	_, bus := boot(t, img)
	if bus.ExitCode != 0 {
		t.Fatal("kernel clobbered user registers")
	}
}

func TestBuildImageValidation(t *testing.T) {
	b := asm.NewBuilder(isa.VSA64, mem.KernBase) // overlaps kernel space
	b.Label("_start")
	b.Nop()
	p, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildImage(p, 1<<20); err == nil {
		t.Fatal("user text below UserBase must be rejected")
	}
}

func TestImageMemoryIsolation(t *testing.T) {
	img := userProg(t, isa.VSA64, func(b *asm.Builder) {
		b.Label("_start")
		b.La(5, "g")
		b.Li(6, 99)
		b.Sd(6, 0, 5)
		b.Li(isa.RegA0, isa.SysExit)
		b.Li(isa.RegA1, 0)
		b.Ecall()
		b.DataLabel("g")
		b.Zero(8)
	})
	m1 := img.NewMemory()
	bus := dev.NewBus(m1)
	c := emu.New(img.ISA, bus, img.Entry)
	c.Run(1 << 20)
	// The pristine image must be untouched by the run.
	addr, _ := img.User.Symbol("g")
	v, _ := img.RAM.Read(addr, 8)
	if v != 0 {
		t.Fatal("pristine RAM mutated by a run")
	}
	v, _ = m1.Read(addr, 8)
	if v != 99 {
		t.Fatal("run memory missing the store")
	}
}
